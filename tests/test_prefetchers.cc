/**
 * @file
 * Tests for the baseline prefetch engines: stride (Baer/Chen),
 * stream buffers (Jouppi), Markov (Joseph/Grunwald), DBCP
 * (Lai et al.), DCPT (Grannaes et al.), GHB PC/DC (Nesbit/Smith)
 * and the Pangloss-style delta-Markov table.
 */

#include <gtest/gtest.h>

#include "prefetch/dbcp.hh"
#include "prefetch/dcpt.hh"
#include "prefetch/delta_markov.hh"
#include "prefetch/ghb.hh"
#include "prefetch/markov.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stream.hh"
#include "prefetch/stride.hh"

namespace tcp {
namespace {

std::vector<Addr>
missTargets(Prefetcher &pf, Addr addr, Pc pc = 0x400000)
{
    std::vector<PrefetchRequest> out;
    pf.observeMiss(AccessContext{addr, pc, 0, false, AccessType::Read},
                   out);
    std::vector<Addr> targets;
    for (const auto &r : out)
        targets.push_back(r.addr);
    return targets;
}

/** Like missTargets, but keeps the full requests (origin checks). */
std::vector<PrefetchRequest>
missRequests(Prefetcher &pf, Addr addr, Pc pc = 0x400000)
{
    std::vector<PrefetchRequest> out;
    pf.observeMiss(AccessContext{addr, pc, 0, false, AccessType::Read},
                   out);
    return out;
}

std::vector<Addr>
hitTargets(Prefetcher &pf, Addr addr, Pc pc = 0x400000)
{
    std::vector<PrefetchRequest> out;
    pf.observeAccess(AccessContext{addr, pc, 0, true, AccessType::Read},
                     out);
    std::vector<Addr> targets;
    for (const auto &r : out)
        targets.push_back(r.addr);
    return targets;
}

// ---------------------------------------------------------------------
// NullPrefetcher

TEST(NullPrefetcherTest, NeverPrefetches)
{
    NullPrefetcher pf;
    EXPECT_TRUE(missTargets(pf, 0x1000).empty());
    EXPECT_EQ(pf.storageBits(), 0u);
}

// ---------------------------------------------------------------------
// StridePrefetcher

TEST(StrideTest, DetectsConstantStride)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    // Needs two confirmations before steady.
    EXPECT_TRUE(missTargets(pf, 1000, pc).empty());
    EXPECT_TRUE(missTargets(pf, 1100, pc).empty()); // stride learned
    const auto t = missTargets(pf, 1200, pc);       // confirmed
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 1300u);
}

TEST(StrideTest, DegreeIssuesMultiple)
{
    StridePrefetcher pf(StrideConfig{512, 3});
    const Pc pc = 0x400100;
    missTargets(pf, 1000, pc);
    missTargets(pf, 1064, pc);
    const auto t = missTargets(pf, 1128, pc);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], 1192u);
    EXPECT_EQ(t[1], 1256u);
    EXPECT_EQ(t[2], 1320u);
}

TEST(StrideTest, StrideChangeResets)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    missTargets(pf, 1000, pc);
    missTargets(pf, 1100, pc);
    ASSERT_FALSE(missTargets(pf, 1200, pc).empty());
    // Break the stride.
    EXPECT_TRUE(missTargets(pf, 5000, pc).empty());
    EXPECT_TRUE(missTargets(pf, 5050, pc).empty());
    const auto t = missTargets(pf, 5100, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 5150u);
}

TEST(StrideTest, ZeroStrideNeverSteady)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(missTargets(pf, 1000, pc).empty());
}

TEST(StrideTest, NegativeStrideWorks)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400200;
    missTargets(pf, 10000, pc);
    missTargets(pf, 9900, pc);
    const auto t = missTargets(pf, 9800, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 9700u);
}

TEST(StrideTest, HitsTrainWithoutIssuing)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400300;
    EXPECT_TRUE(hitTargets(pf, 2000, pc).empty());
    EXPECT_TRUE(hitTargets(pf, 2100, pc).empty());
    EXPECT_TRUE(hitTargets(pf, 2200, pc).empty()); // steady, no issue
    // The very next miss prefetches immediately.
    const auto t = missTargets(pf, 2300, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 2400u);
}

TEST(StrideTest, PerPcTables)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    missTargets(pf, 1000, 0x400100);
    missTargets(pf, 9000, 0x400104); // different PC, no interference
    missTargets(pf, 1100, 0x400100);
    const auto t = missTargets(pf, 1200, 0x400100);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 1300u);
}

// ---------------------------------------------------------------------
// StreamPrefetcher

TEST(StreamTest, AllocatesOnMissAndPrefetchesAhead)
{
    StreamPrefetcher pf(StreamConfig{4, 4, 64});
    const auto t = missTargets(pf, 0x10000);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], 0x10040u);
    EXPECT_EQ(t[3], 0x10100u);
    EXPECT_EQ(pf.allocations.value(), 1u);
}

TEST(StreamTest, AdvanceOnStreamHit)
{
    StreamPrefetcher pf(StreamConfig{4, 4, 64});
    missTargets(pf, 0x10000); // window now [0x10040, 0x10140)
    const auto t = missTargets(pf, 0x10040);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x10140u);
    EXPECT_EQ(pf.advances.value(), 1u);
}

TEST(StreamTest, LruReplacementAmongBuffers)
{
    StreamPrefetcher pf(StreamConfig{2, 2, 64});
    missTargets(pf, 0x10000);
    missTargets(pf, 0x20000);
    missTargets(pf, 0x30000); // evicts the 0x10000 stream
    EXPECT_EQ(pf.allocations.value(), 3u);
    // A miss in the first stream's window now re-allocates.
    missTargets(pf, 0x10040);
    EXPECT_EQ(pf.allocations.value(), 4u);
}

// ---------------------------------------------------------------------
// MarkovPrefetcher

TEST(MarkovTest, LearnsSuccessor)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    missTargets(pf, 0x1000);
    missTargets(pf, 0x2000); // records 0x1000 -> 0x2000
    missTargets(pf, 0x3000);
    const auto t = missTargets(pf, 0x1000);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x2000u);
}

TEST(MarkovTest, MultipleTargetsMruFirst)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    // 0x1000 is followed by 0x2000 then later by 0x5000.
    missTargets(pf, 0x1000);
    missTargets(pf, 0x2000);
    missTargets(pf, 0x1000);
    missTargets(pf, 0x5000);
    const auto t = missTargets(pf, 0x1000);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], 0x5000u); // most recent first
    EXPECT_EQ(t[1], 0x2000u);
}

TEST(MarkovTest, TargetListCapped)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    for (Addr succ : {0x2000u, 0x3000u, 0x4000u, 0x5000u}) {
        missTargets(pf, 0x1000);
        missTargets(pf, succ);
    }
    const auto t = missTargets(pf, 0x1000);
    EXPECT_EQ(t.size(), 2u); // capped at config targets
}

TEST(MarkovTest, BlockGranularity)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    missTargets(pf, 0x1008); // same block as 0x1000
    missTargets(pf, 0x2010);
    missTargets(pf, 0x3000);
    const auto t = missTargets(pf, 0x1010);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x2000u);
}

// ---------------------------------------------------------------------
// DbcpPrefetcher

TEST(DbcpTest, LearnsDeathSuccession)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Pc pc = 0x400400;
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;

    // Generation 1 of A: fill (miss), then its eviction is followed
    // by the miss of B.
    missTargets(pf, block_a, pc);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, pc);
    EXPECT_EQ(pf.deaths_recorded.value(), 1u);

    // Generation 2 of A: the same single-touch signature (fill PC)
    // matches the recorded death -> B is prefetched at fill time.
    const auto t = missTargets(pf, block_a, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], block_b);
}

TEST(DbcpTest, DifferentPcTraceDoesNotMatch)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;
    missTargets(pf, block_a, 0x400400);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, 0x400400);

    // Refill A via a different PC: signature differs, no prediction.
    EXPECT_TRUE(missTargets(pf, block_a, 0x400800).empty());
}

TEST(DbcpTest, SignatureAccumulatesOverHits)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;
    // Generation 1: fill + 2 hits, then death -> B.
    missTargets(pf, block_a, 0x400400);
    hitTargets(pf, block_a, 0x400404);
    hitTargets(pf, block_a, 0x400408);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, 0x400400);

    // Generation 2 with the same access pattern: the prediction
    // fires at the *second hit* (signature reaches death value).
    missTargets(pf, block_a, 0x400400);
    EXPECT_TRUE(hitTargets(pf, block_a, 0x400404).empty());
    const auto t = hitTargets(pf, block_a, 0x400408);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], block_b);
    EXPECT_GE(pf.death_predictions.value(), 1u);
}

TEST(DbcpTest, StorageMatchesBudget)
{
    DbcpPrefetcher pf(DbcpConfig{2 * 1024 * 1024, 16, 32});
    EXPECT_GE(pf.storageBits() / 8, 2u * 1024 * 1024);
}

TEST(DbcpTest, ResetForgets)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Pc pc = 0x400400;
    missTargets(pf, 0x10000, pc);
    pf.observeEvict(EvictContext{0x10000, 100, 0, 50});
    missTargets(pf, 0x20000, pc);
    pf.reset();
    EXPECT_TRUE(missTargets(pf, 0x10000, pc).empty());
    EXPECT_EQ(pf.deaths_recorded.value(), 0u);
}

// ---------------------------------------------------------------------
// Regressions: stream window straddling address 0, stride miss-index
// attribution at non-default block sizes, Markov storage honesty

TEST(StreamTest, WindowStraddlingAddressZeroAdvances)
{
    // Allocate a stream so high that its prefetch window wraps
    // through address 0: next_block ends up at a *low* address while
    // the window's oldest block is still near 2^64. The unsigned
    // window test `block >= next_block - depth * block_bytes`
    // underflowed here, so in-window misses re-allocated the stream
    // instead of advancing it.
    StreamPrefetcher pf(StreamConfig{4, 4, 64});
    const auto alloc = missTargets(pf, 0xFFFFFFFFFFFFFF80);
    ASSERT_EQ(alloc.size(), 4u);
    EXPECT_EQ(alloc[0], 0xFFFFFFFFFFFFFFC0u);
    EXPECT_EQ(alloc[1], 0x0u); // window wrapped through zero
    EXPECT_EQ(alloc[3], 0x80u);
    ASSERT_EQ(pf.allocations.value(), 1u);

    // A miss on a wrapped in-window block must advance the stream.
    const auto t = missTargets(pf, 0x80);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0xC0u);
    EXPECT_EQ(pf.advances.value(), 1u);
    EXPECT_EQ(pf.allocations.value(), 1u); // no re-allocation
}

TEST(StrideTest, MissIndexFollowsConfiguredBlockSize)
{
    // The ledger's miss-index heat table buckets by
    // (addr / block_bytes) & 1023; the old stamp hard-coded 64-byte
    // blocks (addr >> 6), mis-attributing every non-64-byte config.
    StrideConfig cfg;
    cfg.entries = 512;
    cfg.degree = 1;
    cfg.block_bytes = 32;
    StridePrefetcher pf(cfg);
    const Pc pc = 0x400100;
    missRequests(pf, 32, pc);
    missRequests(pf, 64, pc);
    const auto reqs = missRequests(pf, 96, pc); // steady
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].origin.source, PfSource::StrideSteady);
    EXPECT_EQ(reqs[0].origin.miss_index, 96u / 32u);
}

TEST(MarkovTest, StorageBitsMatchDocumentedModel)
{
    // Honest hardware budget: valid + 32-bit tag + targets at the
    // compressed block-pointer width — independent of how many
    // successors the simulator's vectors currently hold.
    MarkovPrefetcher pf(MarkovConfig{65536, 2, 32});
    const std::uint64_t expected =
        65536ull * (1 + 32 + 2ull * kTargetPointerBits);
    EXPECT_EQ(pf.storageBits(), expected);
    for (Addr a = 0; a < 64 * 1024; a += 32)
        missTargets(pf, a);
    EXPECT_EQ(pf.storageBits(), expected); // content-independent
}

// ---------------------------------------------------------------------
// DcptPrefetcher

TEST(DcptTest, ConstantStrideReplaysAfterThreeDeltas)
{
    DcptPrefetcher pf;
    const Pc pc = 0x400200;
    EXPECT_TRUE(missTargets(pf, 0, pc).empty());   // allocate
    EXPECT_TRUE(missTargets(pf, 64, pc).empty());  // 1 delta
    EXPECT_TRUE(missTargets(pf, 128, pc).empty()); // 2 deltas
    const auto t = missTargets(pf, 192, pc);       // (1,1) recurs
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 256u);
    EXPECT_EQ(pf.correlations.value(), 1u);

    // The next miss resumes past the already-issued candidate.
    const auto t2 = missTargets(pf, 256, pc);
    ASSERT_EQ(t2.size(), 2u);
    EXPECT_EQ(t2[0], 320u);
    EXPECT_EQ(t2[1], 384u);
}

TEST(DcptTest, InFlightFilterSquashesDuplicateTargets)
{
    // Two PCs (different table entries) walking the same addresses:
    // the first issues the prefetch, the second's identical candidate
    // is squashed by the shared in-flight buffer.
    DcptPrefetcher pf;
    const Pc pc1 = 0x400200, pc2 = 0x400204;
    for (Addr a : {0u, 64u, 128u})
        missTargets(pf, a, pc1);
    ASSERT_EQ(missTargets(pf, 192, pc1).size(), 1u); // issues 256
    for (Addr a : {0u, 64u, 128u})
        missTargets(pf, a, pc2);
    EXPECT_TRUE(missTargets(pf, 192, pc2).empty()); // 256 in flight
    EXPECT_EQ(pf.filtered.value(), 1u);
}

TEST(DcptTest, OriginStampsFollowConfiguredBlockSize)
{
    DcptConfig cfg;
    cfg.block_bytes = 32;
    DcptPrefetcher pf(cfg);
    const Pc pc = 0x400208;
    missTargets(pf, 0, pc);
    missTargets(pf, 32, pc);
    missTargets(pf, 64, pc);
    const auto reqs = missRequests(pf, 96, pc);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].addr, 128u);
    EXPECT_EQ(reqs[0].origin.source, PfSource::DcptDelta);
    EXPECT_EQ(reqs[0].origin.pc, pc);
    EXPECT_EQ(reqs[0].origin.entry, (pc >> 2) & 127u);
    EXPECT_EQ(reqs[0].origin.miss_index, 96u / 32u);
    // history_hash packs the matched trailing pair (d2 << 32) | d1.
    EXPECT_EQ(reqs[0].origin.history_hash, (1ull << 32) | 1ull);
}

TEST(DcptTest, HugeJumpBreaksThePattern)
{
    DcptPrefetcher pf;
    const Pc pc = 0x400200;
    for (Addr a : {0u, 64u, 128u})
        missTargets(pf, a, pc);
    // A delta outside the 12-bit signed range resets the entry, so
    // the old (1, 1) pattern must not fire on the next stride pair.
    missTargets(pf, Addr{1} << 40, pc);
    EXPECT_TRUE(missTargets(pf, 192, pc).empty());
    EXPECT_TRUE(missTargets(pf, 256, pc).empty());
}

TEST(DcptTest, ResetForgetsPatternsAndStats)
{
    DcptPrefetcher pf;
    const Pc pc = 0x400200;
    for (Addr a : {0u, 64u, 128u})
        missTargets(pf, a, pc);
    ASSERT_FALSE(missTargets(pf, 192, pc).empty());
    const std::uint64_t bits = pf.storageBits();
    pf.reset();
    EXPECT_EQ(pf.correlations.value(), 0u);
    EXPECT_EQ(pf.storageBits(), bits);
    EXPECT_TRUE(missTargets(pf, 256, pc).empty()); // must re-learn
}

// ---------------------------------------------------------------------
// GhbPrefetcher

TEST(GhbTest, LocalizesInterleavedStreamsByPc)
{
    // Two PCs with different strides, perfectly interleaved: the
    // per-PC chains must keep the streams apart, so each predicts
    // its own stride.
    GhbPrefetcher pf;
    const Pc pc1 = 0x400300, pc2 = 0x400304;
    EXPECT_TRUE(missTargets(pf, 0x1000, pc1).empty());
    EXPECT_TRUE(missTargets(pf, 0x80000, pc2).empty());
    EXPECT_TRUE(missTargets(pf, 0x1040, pc1).empty());
    EXPECT_TRUE(missTargets(pf, 0x80080, pc2).empty());
    const auto t1 = missTargets(pf, 0x1080, pc1);
    ASSERT_EQ(t1.size(), pf.currentDegree());
    EXPECT_EQ(t1[0], 0x10C0u);
    EXPECT_EQ(t1[1], 0x1100u);
    const auto t2 = missTargets(pf, 0x80100, pc2);
    ASSERT_EQ(t2.size(), pf.currentDegree());
    EXPECT_EQ(t2[0], 0x80180u);
    EXPECT_EQ(t2[1], 0x80200u);
}

TEST(GhbTest, DeltaPairMatchReplaysCompositePattern)
{
    // Alternating +64/+128 deltas: once the trailing pair recurs in
    // the localized history, the deltas that followed the earlier
    // occurrence replay forward from the current miss.
    GhbPrefetcher pf;
    const Pc pc = 0x400308;
    for (Addr a : {0u, 64u, 192u, 256u})
        missTargets(pf, a, pc);
    const auto t = missTargets(pf, 384, pc);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], 448u); // +64 followed the matched pair
    EXPECT_EQ(t[1], 576u); // then +128
}

TEST(GhbTest, OriginStampsGhbCoordinates)
{
    GhbPrefetcher pf;
    const Pc pc = 0x40030C;
    missTargets(pf, 0x2000, pc);
    missTargets(pf, 0x2040, pc);
    const auto reqs = missRequests(pf, 0x2080, pc);
    ASSERT_FALSE(reqs.empty());
    EXPECT_EQ(reqs[0].origin.source, PfSource::GhbDelta);
    EXPECT_EQ(reqs[0].origin.pc, pc);
    EXPECT_EQ(reqs[0].origin.entry, (pc >> 2) & 511u);
    EXPECT_EQ(reqs[0].origin.miss_index, (0x2080u / 64u) & 1023u);
}

TEST(GhbTest, CalibrationStepsDegreeWithAccuracy)
{
    GhbConfig cfg;
    cfg.degree = 4;
    cfg.calibration_interval = 4;
    GhbPrefetcher pf(cfg);
    ASSERT_EQ(pf.currentDegree(), 4u);

    // Simulate an interval of useless prefetching (the hierarchy
    // owns these counters in a real run): accuracy 0% < 30%.
    pf.issued += 100;
    for (unsigned i = 0; i < 4; ++i)
        missTargets(pf, 0x10000 + i * 0x5000, Pc{0x500000 + 8 * i});
    EXPECT_EQ(pf.currentDegree(), 3u);

    // An accurate interval (90% >= 60%) steps the degree back up.
    pf.issued += 10;
    pf.useful += 9;
    for (unsigned i = 0; i < 4; ++i)
        missTargets(pf, 0x90000 + i * 0x5000, Pc{0x600000 + 8 * i});
    EXPECT_EQ(pf.currentDegree(), 4u);
    EXPECT_EQ(pf.recalibrations.value(), 2u);
}

TEST(GhbTest, ResetRestoresConfiguredDegree)
{
    GhbConfig cfg;
    cfg.degree = 4;
    cfg.calibration_interval = 4;
    GhbPrefetcher pf(cfg);
    pf.issued += 100;
    for (unsigned i = 0; i < 4; ++i)
        missTargets(pf, 0x10000 + i * 0x5000, Pc{0x500000 + 8 * i});
    ASSERT_EQ(pf.currentDegree(), 3u);
    pf.reset();
    EXPECT_EQ(pf.currentDegree(), 4u);
    EXPECT_EQ(pf.correlations.value(), 0u);
    // History is gone: a previously hot PC predicts nothing.
    EXPECT_TRUE(missTargets(pf, 0x1080, 0x400300).empty());
}

// ---------------------------------------------------------------------
// DeltaMarkovPrefetcher

TEST(DeltaMarkovTest, ChainsPredictionsThroughTheDeltaTable)
{
    DeltaMarkovPrefetcher pf;
    EXPECT_TRUE(missTargets(pf, 0).empty());
    EXPECT_TRUE(missTargets(pf, 64).empty());  // first delta
    const auto t = missTargets(pf, 128);       // (+1 -> +1) learned
    ASSERT_EQ(t.size(), 4u); // degree hops, each keyed by the last
    EXPECT_EQ(t[0], 192u);
    EXPECT_EQ(t[3], 384u);
}

TEST(DeltaMarkovTest, PredictsTheMostFrequentSuccessor)
{
    // Key +1 is followed by +2 twice and +3 once; the prediction
    // must take the majority transition.
    DeltaMarkovPrefetcher pf;
    for (Addr a : {0u, 64u, 192u, 256u, 448u, 512u, 640u})
        missTargets(pf, a); // deltas: +1 +2 +1 +3 +1 +2
    const auto t = missTargets(pf, 704); // delta +1 again
    ASSERT_FALSE(t.empty());
    EXPECT_EQ(t[0], 704u + 128u); // +2 outvotes +3
}

TEST(DeltaMarkovTest, OriginStampsRowAndTransition)
{
    DeltaMarkovPrefetcher pf;
    missTargets(pf, 0);
    missTargets(pf, 64);
    const auto reqs = missRequests(pf, 128, 0x400400);
    ASSERT_FALSE(reqs.empty());
    EXPECT_EQ(reqs[0].origin.source, PfSource::DeltaMarkovTarget);
    EXPECT_EQ(reqs[0].origin.pc, 0x400400u);
    EXPECT_EQ(reqs[0].origin.miss_index, 128u / 64u);
    // history_hash packs (key << 32) | predicted delta.
    EXPECT_EQ(reqs[0].origin.history_hash, (1ull << 32) | 1ull);
}

TEST(DeltaMarkovTest, ResetForgetsTransitions)
{
    DeltaMarkovPrefetcher pf;
    missTargets(pf, 0);
    missTargets(pf, 64);
    ASSERT_FALSE(missTargets(pf, 128).empty());
    pf.reset();
    EXPECT_EQ(pf.transitions.value(), 0u);
    // The table is empty again: the first post-reset +1 delta has no
    // row to predict from, and learning restarts from scratch.
    missTargets(pf, 0);
    EXPECT_TRUE(missTargets(pf, 64).empty());
    EXPECT_FALSE(missTargets(pf, 128).empty());
}

} // namespace
} // namespace tcp
