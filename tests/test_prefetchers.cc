/**
 * @file
 * Tests for the baseline prefetch engines: stride (Baer/Chen),
 * stream buffers (Jouppi), Markov (Joseph/Grunwald) and DBCP
 * (Lai et al.).
 */

#include <gtest/gtest.h>

#include "prefetch/dbcp.hh"
#include "prefetch/markov.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stream.hh"
#include "prefetch/stride.hh"

namespace tcp {
namespace {

std::vector<Addr>
missTargets(Prefetcher &pf, Addr addr, Pc pc = 0x400000)
{
    std::vector<PrefetchRequest> out;
    pf.observeMiss(AccessContext{addr, pc, 0, false, AccessType::Read},
                   out);
    std::vector<Addr> targets;
    for (const auto &r : out)
        targets.push_back(r.addr);
    return targets;
}

std::vector<Addr>
hitTargets(Prefetcher &pf, Addr addr, Pc pc = 0x400000)
{
    std::vector<PrefetchRequest> out;
    pf.observeAccess(AccessContext{addr, pc, 0, true, AccessType::Read},
                     out);
    std::vector<Addr> targets;
    for (const auto &r : out)
        targets.push_back(r.addr);
    return targets;
}

// ---------------------------------------------------------------------
// NullPrefetcher

TEST(NullPrefetcherTest, NeverPrefetches)
{
    NullPrefetcher pf;
    EXPECT_TRUE(missTargets(pf, 0x1000).empty());
    EXPECT_EQ(pf.storageBits(), 0u);
}

// ---------------------------------------------------------------------
// StridePrefetcher

TEST(StrideTest, DetectsConstantStride)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    // Needs two confirmations before steady.
    EXPECT_TRUE(missTargets(pf, 1000, pc).empty());
    EXPECT_TRUE(missTargets(pf, 1100, pc).empty()); // stride learned
    const auto t = missTargets(pf, 1200, pc);       // confirmed
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 1300u);
}

TEST(StrideTest, DegreeIssuesMultiple)
{
    StridePrefetcher pf(StrideConfig{512, 3});
    const Pc pc = 0x400100;
    missTargets(pf, 1000, pc);
    missTargets(pf, 1064, pc);
    const auto t = missTargets(pf, 1128, pc);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], 1192u);
    EXPECT_EQ(t[1], 1256u);
    EXPECT_EQ(t[2], 1320u);
}

TEST(StrideTest, StrideChangeResets)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    missTargets(pf, 1000, pc);
    missTargets(pf, 1100, pc);
    ASSERT_FALSE(missTargets(pf, 1200, pc).empty());
    // Break the stride.
    EXPECT_TRUE(missTargets(pf, 5000, pc).empty());
    EXPECT_TRUE(missTargets(pf, 5050, pc).empty());
    const auto t = missTargets(pf, 5100, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 5150u);
}

TEST(StrideTest, ZeroStrideNeverSteady)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400100;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(missTargets(pf, 1000, pc).empty());
}

TEST(StrideTest, NegativeStrideWorks)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400200;
    missTargets(pf, 10000, pc);
    missTargets(pf, 9900, pc);
    const auto t = missTargets(pf, 9800, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 9700u);
}

TEST(StrideTest, HitsTrainWithoutIssuing)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    const Pc pc = 0x400300;
    EXPECT_TRUE(hitTargets(pf, 2000, pc).empty());
    EXPECT_TRUE(hitTargets(pf, 2100, pc).empty());
    EXPECT_TRUE(hitTargets(pf, 2200, pc).empty()); // steady, no issue
    // The very next miss prefetches immediately.
    const auto t = missTargets(pf, 2300, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 2400u);
}

TEST(StrideTest, PerPcTables)
{
    StridePrefetcher pf(StrideConfig{512, 1});
    missTargets(pf, 1000, 0x400100);
    missTargets(pf, 9000, 0x400104); // different PC, no interference
    missTargets(pf, 1100, 0x400100);
    const auto t = missTargets(pf, 1200, 0x400100);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 1300u);
}

// ---------------------------------------------------------------------
// StreamPrefetcher

TEST(StreamTest, AllocatesOnMissAndPrefetchesAhead)
{
    StreamPrefetcher pf(StreamConfig{4, 4, 64});
    const auto t = missTargets(pf, 0x10000);
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], 0x10040u);
    EXPECT_EQ(t[3], 0x10100u);
    EXPECT_EQ(pf.allocations.value(), 1u);
}

TEST(StreamTest, AdvanceOnStreamHit)
{
    StreamPrefetcher pf(StreamConfig{4, 4, 64});
    missTargets(pf, 0x10000); // window now [0x10040, 0x10140)
    const auto t = missTargets(pf, 0x10040);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x10140u);
    EXPECT_EQ(pf.advances.value(), 1u);
}

TEST(StreamTest, LruReplacementAmongBuffers)
{
    StreamPrefetcher pf(StreamConfig{2, 2, 64});
    missTargets(pf, 0x10000);
    missTargets(pf, 0x20000);
    missTargets(pf, 0x30000); // evicts the 0x10000 stream
    EXPECT_EQ(pf.allocations.value(), 3u);
    // A miss in the first stream's window now re-allocates.
    missTargets(pf, 0x10040);
    EXPECT_EQ(pf.allocations.value(), 4u);
}

// ---------------------------------------------------------------------
// MarkovPrefetcher

TEST(MarkovTest, LearnsSuccessor)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    missTargets(pf, 0x1000);
    missTargets(pf, 0x2000); // records 0x1000 -> 0x2000
    missTargets(pf, 0x3000);
    const auto t = missTargets(pf, 0x1000);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x2000u);
}

TEST(MarkovTest, MultipleTargetsMruFirst)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    // 0x1000 is followed by 0x2000 then later by 0x5000.
    missTargets(pf, 0x1000);
    missTargets(pf, 0x2000);
    missTargets(pf, 0x1000);
    missTargets(pf, 0x5000);
    const auto t = missTargets(pf, 0x1000);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], 0x5000u); // most recent first
    EXPECT_EQ(t[1], 0x2000u);
}

TEST(MarkovTest, TargetListCapped)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    for (Addr succ : {0x2000u, 0x3000u, 0x4000u, 0x5000u}) {
        missTargets(pf, 0x1000);
        missTargets(pf, succ);
    }
    const auto t = missTargets(pf, 0x1000);
    EXPECT_EQ(t.size(), 2u); // capped at config targets
}

TEST(MarkovTest, BlockGranularity)
{
    MarkovPrefetcher pf(MarkovConfig{1024, 2, 32});
    missTargets(pf, 0x1008); // same block as 0x1000
    missTargets(pf, 0x2010);
    missTargets(pf, 0x3000);
    const auto t = missTargets(pf, 0x1010);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0x2000u);
}

// ---------------------------------------------------------------------
// DbcpPrefetcher

TEST(DbcpTest, LearnsDeathSuccession)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Pc pc = 0x400400;
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;

    // Generation 1 of A: fill (miss), then its eviction is followed
    // by the miss of B.
    missTargets(pf, block_a, pc);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, pc);
    EXPECT_EQ(pf.deaths_recorded.value(), 1u);

    // Generation 2 of A: the same single-touch signature (fill PC)
    // matches the recorded death -> B is prefetched at fill time.
    const auto t = missTargets(pf, block_a, pc);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], block_b);
}

TEST(DbcpTest, DifferentPcTraceDoesNotMatch)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;
    missTargets(pf, block_a, 0x400400);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, 0x400400);

    // Refill A via a different PC: signature differs, no prediction.
    EXPECT_TRUE(missTargets(pf, block_a, 0x400800).empty());
}

TEST(DbcpTest, SignatureAccumulatesOverHits)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Addr block_a = 0x10000;
    const Addr block_b = 0x20000;
    // Generation 1: fill + 2 hits, then death -> B.
    missTargets(pf, block_a, 0x400400);
    hitTargets(pf, block_a, 0x400404);
    hitTargets(pf, block_a, 0x400408);
    pf.observeEvict(EvictContext{block_a, 100, 0, 50});
    missTargets(pf, block_b, 0x400400);

    // Generation 2 with the same access pattern: the prediction
    // fires at the *second hit* (signature reaches death value).
    missTargets(pf, block_a, 0x400400);
    EXPECT_TRUE(hitTargets(pf, block_a, 0x400404).empty());
    const auto t = hitTargets(pf, block_a, 0x400408);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], block_b);
    EXPECT_GE(pf.death_predictions.value(), 1u);
}

TEST(DbcpTest, StorageMatchesBudget)
{
    DbcpPrefetcher pf(DbcpConfig{2 * 1024 * 1024, 16, 32});
    EXPECT_GE(pf.storageBits() / 8, 2u * 1024 * 1024);
}

TEST(DbcpTest, ResetForgets)
{
    DbcpPrefetcher pf(DbcpConfig{1 << 16, 16, 32});
    const Pc pc = 0x400400;
    missTargets(pf, 0x10000, pc);
    pf.observeEvict(EvictContext{0x10000, 100, 0, 50});
    missTargets(pf, 0x20000, pc);
    pf.reset();
    EXPECT_TRUE(missTargets(pf, 0x10000, pc).empty());
    EXPECT_EQ(pf.deaths_recorded.value(), 0u);
}

} // namespace
} // namespace tcp
