/**
 * @file
 * Tests of the deterministic PRNG used for workload synthesis. The
 * key contract is bit-exact reproducibility: the same seed always
 * yields the same stream.
 */

#include <gtest/gtest.h>

#include "util/random.hh"

namespace tcp {
namespace {

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(RngTest, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BetweenInclusiveRange)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.between(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
    EXPECT_EQ(rng.between(42, 42), 42u);
}

TEST(RngTest, ChanceEdgeCases)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng rng(14);
    constexpr std::uint64_t kBuckets = 8;
    int counts[kBuckets] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(kBuckets)];
    for (std::uint64_t b = 0; b < kBuckets; ++b)
        EXPECT_NEAR(counts[b], n / kBuckets, n / kBuckets * 0.1);
}

TEST(RngTest, GeometricCapped)
{
    Rng rng(15);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.geometric(0.9, 5), 5u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(rng.geometric(0.0, 5), 0u);
}

} // namespace
} // namespace tcp
