/**
 * @file
 * Tests for the SIMD tag-scan layer (util/simd.hh) and the
 * lane-interleaved directory built on it (mem/lane_directory.hh):
 *
 *  - every kernel tier available on the host (scalar, SSE2, AVX2)
 *    computes bit-identical results over adversarial key arrays;
 *  - a LaneDirectory answers exactly like a naive per-lane reference
 *    model under random writes, lookups, and lane flushes;
 *  - CacheModels bound to a shared LaneDirectory behave
 *    bit-identically to unbound solo models over random
 *    access/fill/invalidate/flush interleavings, across bind and
 *    unbind boundaries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/lane_directory.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace tcp {
namespace {

// ---------------------------------------------------------------------
// Kernel tier equivalence
// ---------------------------------------------------------------------

/** Keys that stress the SSE2 32-bit-halves equality emulation. */
std::vector<Tag>
adversarialKeys(Rng &rng, unsigned n)
{
    std::vector<Tag> keys(n);
    for (unsigned i = 0; i < n; ++i) {
        switch (rng.next() % 5) {
          case 0:
            keys[i] = kInvalidTag;
            break;
          case 1:
            // Differ from a neighbour only in the high 32 bits.
            keys[i] = (rng.next() << 32) | 0x1234u;
            break;
          case 2:
            // Differ only in the low 32 bits.
            keys[i] = 0xabcd000000000000ull | (rng.next() >> 32);
            break;
          default:
            keys[i] = rng.next();
            break;
        }
    }
    return keys;
}

TEST(SimdKernelsTest, TierReporting)
{
    EXPECT_TRUE(simdTierAvailable(SimdTier::Scalar));
    EXPECT_STREQ(simdTierName(SimdTier::Scalar), "scalar");
    EXPECT_STREQ(simdTierName(SimdTier::Sse2), "sse2");
    EXPECT_STREQ(simdTierName(SimdTier::Avx2), "avx2");
    // The dispatched tier must be runnable on this host.
    EXPECT_TRUE(simdTierAvailable(simdTier()));
}

TEST(SimdKernelsTest, FindTagTiersAgree)
{
    Rng rng(0x51d0);
    for (unsigned n = 0; n <= 80; ++n) {
        for (int rep = 0; rep < 32; ++rep) {
            std::vector<Tag> keys = adversarialKeys(rng, n);
            // Mix absent needles with planted ones (any position).
            Tag tag = rng.next();
            if (n > 0 && rep % 2 == 0) {
                const unsigned at = rng.next() % n;
                tag = keys[at];
            }
            const unsigned want = findTagScalar(keys.data(), n, tag);
            EXPECT_EQ(simdFindTag(keys.data(), n, tag), want);
            if (simdTierAvailable(SimdTier::Sse2)) {
                EXPECT_EQ(findTagSse2(keys.data(), n, tag), want);
            }
            if (simdTierAvailable(SimdTier::Avx2)) {
                EXPECT_EQ(findTagAvx2(keys.data(), n, tag), want);
            }
        }
    }
}

TEST(SimdKernelsTest, MatchMaskTiersAgree)
{
    Rng rng(0x9a5c);
    for (unsigned n = 1; n <= 64; ++n) {
        for (int rep = 0; rep < 32; ++rep) {
            std::vector<Tag> keys = adversarialKeys(rng, n);
            Tag tag = rng.next();
            if (rep % 2 == 0) {
                // Plant several matches: masks are not one-hot.
                tag = keys[rng.next() % n];
                keys[rng.next() % n] = tag;
                keys[rng.next() % n] = tag;
            }
            const std::uint64_t want =
                matchMaskScalar(keys.data(), n, tag);
            EXPECT_EQ(simdMatchMask(keys.data(), n, tag), want);
            if (simdTierAvailable(SimdTier::Sse2)) {
                EXPECT_EQ(matchMaskSse2(keys.data(), n, tag), want);
            }
            if (simdTierAvailable(SimdTier::Avx2)) {
                EXPECT_EQ(matchMaskAvx2(keys.data(), n, tag), want);
            }
        }
    }
}

TEST(SimdKernelsTest, MatchMaskEdges)
{
    // All-match and no-match at the widest mask.
    std::vector<Tag> keys(64, Tag{42});
    EXPECT_EQ(matchMaskScalar(keys.data(), 64, 42), ~std::uint64_t{0});
    EXPECT_EQ(simdMatchMask(keys.data(), 64, 42), ~std::uint64_t{0});
    EXPECT_EQ(simdMatchMask(keys.data(), 64, 43), 0u);
    // Tail handling: n not a multiple of the vector width.
    for (unsigned n : {1u, 3u, 5u, 7u, 63u})
        EXPECT_EQ(simdMatchMask(keys.data(), n, 42),
                  n == 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << n) - 1);
}

// ---------------------------------------------------------------------
// LaneDirectory vs naive reference
// ---------------------------------------------------------------------

TEST(LaneDirectoryTest, SupportsGuard)
{
    EXPECT_TRUE(LaneDirectory::supports(64, 4, 16));  // 64 bits
    EXPECT_FALSE(LaneDirectory::supports(64, 4, 17)); // 68 bits
    EXPECT_FALSE(LaneDirectory::supports(64, 4, 1));  // solo
    EXPECT_FALSE(LaneDirectory::supports(0, 4, 8));
}

TEST(LaneDirectoryTest, MatchesReferenceModel)
{
    constexpr std::uint64_t kSets = 32;
    constexpr unsigned kAssoc = 4;
    constexpr unsigned kLanes = 8;
    LaneDirectory dir(kSets, kAssoc, kLanes);
    // ref[set][way][lane], kInvalidTag = empty.
    std::vector<Tag> ref(kSets * kAssoc * kLanes, kInvalidTag);
    const auto at = [&](std::uint64_t set, unsigned way,
                        unsigned lane) -> Tag & {
        return ref[(set * kAssoc + way) * kLanes + lane];
    };

    Rng rng(0xd1f0);
    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t set = rng.next() % kSets;
        const unsigned way = rng.next() % kAssoc;
        const unsigned lane = rng.next() % kLanes;
        // A tiny tag alphabet makes cross-way and cross-lane
        // collisions (multi-bit masks) common.
        const Tag tag = rng.next() % 13;
        switch (rng.next() % 16) {
          case 0:
            at(set, way, lane) = kInvalidTag;
            dir.setKey(set, way, lane, kInvalidTag);
            break;
          case 1:
            if (op % 1024 == 1) { // rare, like a cache flush
                for (std::uint64_t s = 0; s < kSets; ++s)
                    for (unsigned w = 0; w < kAssoc; ++w)
                        at(s, w, lane) = kInvalidTag;
                dir.clearLane(lane);
            }
            break;
          case 2:
          case 3:
          case 4:
            at(set, way, lane) = tag;
            dir.setKey(set, way, lane, tag);
            break;
          default: {
            unsigned want = LaneDirectory::kNoWay;
            for (unsigned w = 0; w < kAssoc; ++w) {
                if (at(set, w, lane) == tag) {
                    want = w;
                    break;
                }
            }
            ASSERT_EQ(dir.findWay(set, tag, lane), want)
                << "op " << op << " set " << set << " lane " << lane;
            break;
          }
        }
    }
    // The memo must actually be earning its keep in this mix.
    EXPECT_GT(dir.memoHits(), 0u);
    EXPECT_GT(dir.memoScans(), 0u);
    // Full readback sweep.
    for (std::uint64_t s = 0; s < kSets; ++s)
        for (unsigned w = 0; w < kAssoc; ++w)
            for (unsigned l = 0; l < kLanes; ++l)
                ASSERT_EQ(dir.key(s, w, l), at(s, w, l));
}

// ---------------------------------------------------------------------
// Bound CacheModel vs solo CacheModel
// ---------------------------------------------------------------------

/** One lane pair: a directory-bound model and its solo reference. */
struct LanePair
{
    CacheModel bound;
    CacheModel solo;

    explicit LanePair(const CacheConfig &cfg) : bound(cfg), solo(cfg) {}
};

void
expectIdentical(const CacheModel &a, const CacheModel &b)
{
    for (std::uint64_t set = 0; set < a.numSets(); ++set) {
        for (unsigned way = 0; way < a.assoc(); ++way) {
            const CacheLine &la = a.lineAt(set, way);
            const CacheLine &lb = b.lineAt(set, way);
            ASSERT_EQ(la.valid, lb.valid) << set << "/" << way;
            ASSERT_EQ(la.tag, lb.tag) << set << "/" << way;
            ASSERT_EQ(la.lru_stamp, lb.lru_stamp) << set << "/" << way;
            ASSERT_EQ(la.last_access, lb.last_access);
        }
    }
}

/**
 * Drive every lane's (bound, solo) pair through the same seeded
 * stream of accesses, fills, invalidates, and flushes, asserting the
 * models never diverge. The per-op interleaving across lanes is
 * deliberately random — the directory contract is exactness under
 * any interleaving, not just lockstep.
 */
void
runBoundVsSolo(const CacheConfig &cfg, unsigned lanes,
               std::uint64_t seed)
{
    ASSERT_TRUE(
        LaneDirectory::supports(cfg.numSets(), cfg.assoc, lanes));
    LaneDirectory dir(cfg.numSets(), cfg.assoc, lanes);
    std::vector<LanePair> pairs;
    pairs.reserve(lanes);
    for (unsigned l = 0; l < lanes; ++l)
        pairs.emplace_back(cfg);

    Rng rng(seed);
    Cycle now = 0;
    // Confined address space so sets collide and evict often.
    const auto randAddr = [&] {
        return (rng.next() % (cfg.numSets() * 8)) * cfg.block_bytes;
    };
    const auto step = [&](LanePair &p) {
        ++now;
        const std::uint64_t roll = rng.next() % 100;
        const Addr addr = randAddr();
        if (roll < 80) {
            CacheLine *hb = p.bound.access(addr, now);
            CacheLine *hs = p.solo.access(addr, now);
            ASSERT_EQ(hb != nullptr, hs != nullptr);
            if (!hb) {
                const auto eb = p.bound.fill(addr, now);
                const auto es = p.solo.fill(addr, now);
                ASSERT_EQ(eb.has_value(), es.has_value());
                if (eb) {
                    ASSERT_EQ(eb->block_addr, es->block_addr);
                }
            }
        } else if (roll < 95) {
            p.bound.invalidate(addr);
            p.solo.invalidate(addr);
        } else {
            p.bound.flush();
            p.solo.flush();
        }
    };

    // Phase 1: solo warm-up on both models, then bind mid-life (the
    // bind copies live keys into the directory column).
    for (int op = 0; op < 2000; ++op)
        step(pairs[rng.next() % lanes]);
    for (unsigned l = 0; l < lanes; ++l)
        pairs[l].bound.bindLaneDirectory(&dir, l);

    // Phase 2: bound, random lane interleaving.
    for (int op = 0; op < 20000; ++op)
        step(pairs[rng.next() % lanes]);
    for (LanePair &p : pairs)
        expectIdentical(p.bound, p.solo);

    // Phase 3: unbind (copies the column back) and keep going.
    for (unsigned l = 0; l < lanes; ++l)
        pairs[l].bound.bindLaneDirectory(nullptr, l);
    for (int op = 0; op < 2000; ++op)
        step(pairs[rng.next() % lanes]);
    for (LanePair &p : pairs)
        expectIdentical(p.bound, p.solo);
}

TEST(LaneDirectoryTest, BoundCacheMatchesSoloDirectMapped)
{
    // The L1-D shape of the default machine, scaled down: assoc 1,
    // 16 lanes.
    runBoundVsSolo(CacheConfig{"l1d", 64 * 32, 1, 32, 1, 8}, 16,
                   0xb0b1);
}

TEST(LaneDirectoryTest, BoundCacheMatchesSoloSetAssociative)
{
    // The L2 shape: assoc 4, 8 lanes (32 mask bits), 64-byte blocks.
    runBoundVsSolo(CacheConfig{"l2", 64 * 4 * 64, 4, 64, 10, 16}, 8,
                   0xc4c2);
}

TEST(LaneDirectoryTest, BoundCacheMatchesSoloRandomRepl)
{
    CacheConfig cfg{"l1i", 32 * 4 * 32, 4, 32, 1, 8};
    cfg.repl = ReplPolicy::Random;
    runBoundVsSolo(cfg, 4, 0x5eed);
}

} // namespace
} // namespace tcp
