/**
 * @file
 * Tests for the command-line flag parser used by benches/examples.
 */

#include <gtest/gtest.h>

#include "util/args.hh"

namespace tcp {
namespace {

ArgParser
makeParser()
{
    ArgParser p;
    p.addFlag("count", "10", "a number");
    p.addFlag("name", "foo", "a string");
    p.addFlag("ratio", "0.5", "a double");
    p.addFlag("verbose", "false", "a bool");
    p.addFlag("items", "a,b,c", "a list");
    return p;
}

void
parse(ArgParser &p, std::initializer_list<const char *> argv_tail)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), argv_tail);
    p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, DefaultsApply)
{
    ArgParser p = makeParser();
    parse(p, {});
    EXPECT_EQ(p.getInt("count"), 10);
    EXPECT_EQ(p.getString("name"), "foo");
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.5);
    EXPECT_FALSE(p.getBool("verbose"));
    EXPECT_FALSE(p.wasSet("count"));
}

TEST(ArgsTest, EqualsSyntax)
{
    ArgParser p = makeParser();
    parse(p, {"--count=42", "--name=bar"});
    EXPECT_EQ(p.getInt("count"), 42);
    EXPECT_EQ(p.getString("name"), "bar");
    EXPECT_TRUE(p.wasSet("count"));
    EXPECT_FALSE(p.wasSet("ratio"));
}

TEST(ArgsTest, SpaceSyntax)
{
    ArgParser p = makeParser();
    parse(p, {"--count", "17"});
    EXPECT_EQ(p.getInt("count"), 17);
}

TEST(ArgsTest, BareBooleanFlag)
{
    ArgParser p = makeParser();
    parse(p, {"--verbose"});
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(ArgsTest, UnsignedRejectsNegative)
{
    ArgParser p = makeParser();
    parse(p, {"--count=-5"});
    EXPECT_EQ(p.getInt("count"), -5);
    EXPECT_EXIT(p.getUint("count"), testing::ExitedWithCode(1),
                "non-negative");
}

TEST(ArgsTest, ListSplitting)
{
    ArgParser p = makeParser();
    parse(p, {"--items=x,y"});
    const auto items = p.getList("items");
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0], "x");
    EXPECT_EQ(items[1], "y");
}

TEST(ArgsTest, UnknownFlagIsFatal)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--nope=1"};
    EXPECT_EXIT(p.parse(2, argv.data()), testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(ArgsTest, MalformedIntIsFatal)
{
    ArgParser p = makeParser();
    parse(p, {"--count=abc"});
    EXPECT_EXIT(p.getInt("count"), testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(ArgsTest, MalformedBoolIsFatal)
{
    ArgParser p = makeParser();
    parse(p, {"--verbose=maybe"});
    EXPECT_EXIT(p.getBool("verbose"), testing::ExitedWithCode(1),
                "expects a boolean");
}

TEST(ArgsTest, BoolSpellings)
{
    for (const char *t : {"true", "1", "yes", "on"}) {
        ArgParser p = makeParser();
        parse(p, {(std::string("--verbose=") + t).c_str()});
        EXPECT_TRUE(p.getBool("verbose")) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        ArgParser p = makeParser();
        parse(p, {(std::string("--verbose=") + f).c_str()});
        EXPECT_FALSE(p.getBool("verbose")) << f;
    }
}

TEST(ArgsTest, HelpTextMentionsFlags)
{
    ArgParser p = makeParser();
    const std::string help = p.helpText("prog");
    EXPECT_NE(help.find("--count"), std::string::npos);
    EXPECT_NE(help.find("a number"), std::string::npos);
}

TEST(SplitStringTest, DropsEmptyFields)
{
    const auto out = splitString(",a,,b,", ',');
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], "a");
    EXPECT_EQ(out[1], "b");
}

TEST(SplitStringTest, EmptyInput)
{
    EXPECT_TRUE(splitString("", ',').empty());
}

} // namespace
} // namespace tcp
