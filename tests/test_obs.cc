/**
 * @file
 * Tests for the prefetch lifecycle attribution subsystem
 * (PrefetchLedger): direct-drive edge cases for each outcome class,
 * the shadow victim table (including wraparound), the partition
 * invariant sum(outcome classes) == issued across engines on real
 * runs, agreement with the hierarchy's own pf_* counters at zero
 * warmup, and bit-identical ledger JSON under BatchRunner regardless
 * of worker count. Also covers the satellites: the TraceSink event
 * cap and the JSON writer's non-finite rejection.
 */

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "harness/batch.hh"
#include "harness/runner.hh"
#include "obs/ledger.hh"
#include "sim/json.hh"
#include "sim/trace_sink.hh"

namespace tcp {
namespace {

/** An L2-block-aligned address under the default 64 B geometry. */
constexpr Addr
block(std::uint64_t n)
{
    return n << 6;
}

PfOrigin
origin(std::uint64_t entry, Addr pc = 0x400000)
{
    PfOrigin o;
    o.source = PfSource::PhtCorrelation;
    o.entry = entry;
    o.history_hash = 0x1234;
    o.pc = pc;
    o.miss_index = entry & 1023;
    return o;
}

/** A valid prefetched line, as CacheModel hands victims to listeners. */
CacheLine
prefetchedLine()
{
    CacheLine line;
    line.valid = true;
    line.prefetched = true;
    return line;
}

TEST(LedgerTest, DemandBeforeReadyIsLateAfterIsUseful)
{
    PrefetchLedger ledger;
    ledger.onIssue(block(1), origin(1), /*now=*/100, /*ready=*/200);
    ledger.onIssue(block(2), origin(2), /*now=*/100, /*ready=*/200);

    // block(1) is demanded while in flight: late. block(2) is
    // demanded after its data arrived: useful.
    ledger.onDemandHit(block(1), 150);
    ledger.onDemandHit(block(2), 250);

    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Late), 1u);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Useful), 1u);
    EXPECT_EQ(ledger.liveCount(), 0u);

    // A second touch of a retired block is a no-op; the first touch
    // decided the outcome.
    ledger.onDemandHit(block(1), 300);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Late), 1u);

    ledger.finalize();
    EXPECT_EQ(ledger.outcomeSum(), 2u);
    EXPECT_EQ(ledger.issued.value(), 2u);
}

TEST(LedgerTest, PrefetchEvictedByPrefetchThenVictimRedemanded)
{
    PrefetchLedger ledger;
    // A arrives, then B's fill evicts A's block from the L2.
    ledger.onIssue(block(1), origin(1), 100, 110);
    ledger.onIssue(block(2), origin(2), 120, 130);
    ledger.onCacheEvict(kLedgerCacheL2, block(1), prefetchedLine(),
                        block(2), 125);

    // A retires early (never used); its block enters the shadow
    // victim table charged to B.
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Early), 1u);
    EXPECT_EQ(ledger.pollution_events.value(), 0u);

    // The evicted block is demanded again: a pollution event, and B
    // is marked so it retires as pollution rather than early.
    ledger.onL2DemandMiss(block(1), 140);
    EXPECT_EQ(ledger.pollution_events.value(), 1u);

    ledger.onCacheEvict(kLedgerCacheL2, block(2), prefetchedLine(),
                        block(99), 150);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Pollution), 1u);

    ledger.finalize();
    EXPECT_EQ(ledger.outcomeSum(), ledger.issued.value());
}

TEST(LedgerTest, RedundantWhileInFlight)
{
    PrefetchLedger ledger;
    ledger.onIssue(block(1), origin(1), 100, 200);
    // The engine re-predicts the in-flight block: redundant, and the
    // live record is untouched.
    ledger.onRedundant(block(1), origin(1), 120);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Redundant), 1u);
    EXPECT_EQ(ledger.liveCount(), 1u);

    ledger.onDrop(block(3), origin(3), 130);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Dropped), 1u);

    ledger.finalize();
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Unresolved), 1u);
    EXPECT_EQ(ledger.outcomeSum(), 3u);
    EXPECT_EQ(ledger.issued.value(), 3u);
}

TEST(LedgerTest, ShadowWraparoundLosesOldestVictim)
{
    // A single-entry shadow table: the second insertion overwrites
    // the first, so only the newest victim can still be detected.
    LedgerConfig config;
    config.shadow_entries = 1;
    PrefetchLedger ledger(config);

    ledger.onIssue(block(1), origin(1), 100, 110);
    ledger.onCacheEvict(kLedgerCacheL2, block(10), prefetchedLine(),
                        block(1), 105);
    ledger.onIssue(block(2), origin(2), 120, 130);
    ledger.onCacheEvict(kLedgerCacheL2, block(20), prefetchedLine(),
                        block(2), 125);
    EXPECT_EQ(ledger.shadow_overwrites.value(), 1u);

    // The overwritten victim's re-demand goes undetected (pollution
    // is approximate from below)...
    ledger.onL2DemandMiss(block(10), 140);
    EXPECT_EQ(ledger.pollution_events.value(), 0u);
    // ...while the surviving entry still fires.
    ledger.onL2DemandMiss(block(20), 150);
    EXPECT_EQ(ledger.pollution_events.value(), 1u);

    ledger.finalize();
    // block(1) was never marked: unresolved. block(2) polluted.
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Unresolved), 1u);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Pollution), 1u);
    EXPECT_EQ(ledger.outcomeSum(), ledger.issued.value());
}

TEST(LedgerTest, PromotedLineTrackedThroughL1)
{
    PrefetchLedger ledger;
    ledger.setGeometry(/*l1_block_bits=*/5, /*l2_block_bits=*/6);

    ledger.onIssue(block(1), origin(1), 100, 110);
    ledger.onPromote(block(1), 120); // L1-aligned == L2-aligned here
    EXPECT_EQ(ledger.promotions.value(), 1u);

    // The promotion's L1 fill displaces a live line; its re-demand
    // (an L1 miss) is pollution charged to the promoted prefetch.
    ledger.onCacheEvict(kLedgerCacheL1D, 0x8020, prefetchedLine(),
                        block(1), 121);
    ledger.onL1Miss(0x8020, 130);
    EXPECT_EQ(ledger.pollution_events.value(), 1u);

    // Losing the L2 copy does not retire a promoted record...
    ledger.onCacheEvict(kLedgerCacheL2, block(1), prefetchedLine(),
                        block(50), 140);
    EXPECT_EQ(ledger.liveCount(), 1u);
    // ...losing the L1 copy does, as pollution.
    ledger.onCacheEvict(kLedgerCacheL1D, block(1), prefetchedLine(),
                        0x9000, 150);
    EXPECT_EQ(ledger.outcomeCount(PfOutcome::Pollution), 1u);

    ledger.finalize();
    EXPECT_EQ(ledger.outcomeSum(), ledger.issued.value());
}

TEST(LedgerTest, ResetClearsEverything)
{
    PrefetchLedger ledger;
    ledger.onIssue(block(1), origin(1), 100, 110);
    ledger.onRedundant(block(2), origin(2), 120);
    ledger.reset();
    EXPECT_EQ(ledger.issued.value(), 0u);
    EXPECT_EQ(ledger.liveCount(), 0u);
    ledger.finalize();
    EXPECT_EQ(ledger.outcomeSum(), 0u);
}

TEST(LedgerTest, HeatTablesSortedAndCapped)
{
    LedgerConfig config;
    config.top_n = 2;
    PrefetchLedger ledger(config);
    // Three origins with distinct issue counts: 3x entry 7,
    // 2x entry 8, 1x entry 9.
    for (int i = 0; i < 3; ++i)
        ledger.onRedundant(block(1), origin(7), 100);
    for (int i = 0; i < 2; ++i)
        ledger.onRedundant(block(2), origin(8), 100);
    ledger.onRedundant(block(3), origin(9), 100);
    ledger.finalize();

    const Json j = ledger.toJson();
    const Json &top = j.at("origins").at("top");
    ASSERT_EQ(top.size(), 2u); // capped at top_n
    EXPECT_EQ(top.at(std::size_t{0}).at("entry").asUint(), 7u);
    EXPECT_EQ(top.at(std::size_t{0}).at("issued").asUint(), 3u);
    EXPECT_EQ(top.at(std::size_t{1}).at("entry").asUint(), 8u);
    EXPECT_EQ(j.at("origins").at("entries").asUint(), 3u);
}

// ---------------------------------------------------------------------
// Whole-system properties (real runs)

TEST(LedgerRunTest, OutcomeClassesPartitionIssuedAcrossEngines)
{
    for (const char *engine :
         {"tcp8k", "stream", "dbcp2m", "markov", "hybrid8k", "dcpt",
          "ghb", "dmarkov"}) {
        RunSpec spec;
        spec.workload = "gzip";
        spec.engine = engine;
        spec.instructions = 60000;
        spec.ledger = true;
        const RunResult r = runSpec(spec);

        const std::uint64_t sum =
            r.ledger_useful + r.ledger_late + r.ledger_early +
            r.ledger_pollution + r.ledger_redundant +
            r.ledger_dropped + r.ledger_unresolved;
        EXPECT_EQ(sum, r.ledger_issued) << engine;
        EXPECT_EQ(r.ledger_issued, r.pf_issued) << engine;
    }
}

TEST(LedgerRunTest, AgreesWithHierarchyCountersAtZeroWarmup)
{
    // With no warmup, every prefetched line the run ever touches was
    // issued inside the measured (= tracked) window, so the ledger's
    // useful/late split must reproduce the hierarchy's counters
    // exactly: pf_useful ticks on every first touch, pf_late on the
    // not-yet-arrived subset.
    RunSpec spec;
    spec.workload = "gzip";
    spec.engine = "tcp8k";
    spec.instructions = 60000;
    spec.warmup = 0;
    spec.ledger = true;
    const RunResult r = runSpec(spec);

    ASSERT_GT(r.pf_issued, 0u);
    EXPECT_EQ(r.ledger_useful + r.ledger_late, r.pf_useful);
    EXPECT_EQ(r.ledger_late, r.pf_late);
}

TEST(LedgerRunTest, LedgerJsonBitIdenticalAcrossWorkerCounts)
{
    std::vector<RunSpec> specs;
    for (const char *engine :
         {"tcp8k", "stream", "hybrid8k", "dcpt", "ghb", "dmarkov"}) {
        RunSpec spec;
        spec.workload = "art";
        spec.engine = engine;
        spec.instructions = 40000;
        spec.ledger = true;
        specs.push_back(spec);
    }

    BatchRunner one(1);
    BatchRunner eight(8);
    const auto a = one.run(specs);
    const auto b = eight.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // The full ledger document — counters, histograms, and heat
        // tables — must not depend on scheduling.
        EXPECT_EQ(a[i].ledger.dump(), b[i].ledger.dump())
            << specs[i].engine;
        EXPECT_EQ(a[i].toJson().dump(), b[i].toJson().dump())
            << specs[i].engine;
    }
}

TEST(LedgerRunTest, NewEnginesRunCleanUnderChecker)
{
    // The differential checker panics on any divergence between the
    // timing hierarchy and its functional reference models; the new
    // championship engines must not perturb either.
    for (const char *engine : {"dcpt", "ghb", "dmarkov"}) {
        RunSpec spec;
        spec.workload = "gzip";
        spec.engine = engine;
        spec.instructions = 40000;
        spec.ledger = true;
        spec.check = true;
        const RunResult r = runSpec(spec);
        EXPECT_GT(r.core.instructions, 0u) << engine;
    }
}

// ---------------------------------------------------------------------
// Satellites: trace buffer cap, non-finite JSON rejection

TEST(TraceSinkCapTest, EventsPastCapAreCountedNotStored)
{
    TraceSink sink(/*max_events=*/4);
    for (int i = 0; i < 6; ++i)
        sink.instant("ev", "test", i);
    sink.counter("c", 7, 1.0); // also rejected once full
    EXPECT_EQ(sink.eventCount(), 4u);
    EXPECT_EQ(sink.droppedCount(), 3u);

    const Json doc = sink.toJson();
    EXPECT_EQ(doc.at("traceEvents").size(), 4u);
    EXPECT_EQ(doc.at("otherData").at("dropped_events").asUint(), 3u);
    EXPECT_EQ(doc.at("otherData").at("event_limit").asUint(), 4u);

    sink.clear();
    EXPECT_EQ(sink.droppedCount(), 0u);
    sink.instant("ev", "test", 8);
    EXPECT_EQ(sink.eventCount(), 1u);
}

TEST(TraceSinkCapTest, ZeroMeansUnbounded)
{
    TraceSink sink(0);
    for (int i = 0; i < 100; ++i)
        sink.instant("ev", "test", i);
    EXPECT_EQ(sink.eventCount(), 100u);
    EXPECT_EQ(sink.droppedCount(), 0u);
}

TEST(JsonNonFiniteDeathTest, NaNAndInfinityRefuseToSerialize)
{
    EXPECT_DEATH(
        Json(std::numeric_limits<double>::quiet_NaN()).dump(),
        "non-finite");
    EXPECT_DEATH(Json(std::numeric_limits<double>::infinity()).dump(),
                 "non-finite");
}

} // namespace
} // namespace tcp
