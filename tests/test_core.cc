/**
 * @file
 * Tests for the out-of-order core timing model: IPC bounds, width
 * and window limits, dependence serialisation, branch squashes, and
 * the memory-latency monotonicity property.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "trace/workloads.hh"

namespace tcp {
namespace {

/** A scripted op stream for precise timing checks. */
class ScriptedSource : public TraceSource
{
  public:
    explicit ScriptedSource(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

MicroOp
alu(std::uint8_t dep1 = 0)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = 0x400000;
    op.dep1 = dep1;
    return op;
}

MicroOp
load(Addr addr, std::uint8_t dep1 = 0)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.pc = 0x400010;
    op.addr = addr;
    op.dep1 = dep1;
    return op;
}

CoreResult
runOps(std::vector<MicroOp> ops, MachineConfig cfg = MachineConfig{})
{
    ScriptedSource src(std::move(ops));
    MemoryHierarchy mem(cfg);
    OooCore core(cfg.core, mem);
    return core.run(src, 1 << 30);
}

TEST(CoreTest, IpcNeverExceedsWidth)
{
    std::vector<MicroOp> ops(10000, alu());
    const CoreResult r = runOps(ops);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 8.0);
    // Independent single-cycle ALU ops should get close to width.
    EXPECT_GT(r.ipc, 6.0);
}

TEST(CoreTest, SerialChainRunsAtOneIpc)
{
    // Every op depends on its predecessor: IPC ~ 1.
    std::vector<MicroOp> ops(10000, alu(1));
    const CoreResult r = runOps(ops);
    EXPECT_LT(r.ipc, 1.2);
    EXPECT_GT(r.ipc, 0.8);
}

TEST(CoreTest, SerialLoadsExposeFullMemoryLatency)
{
    // Pointer-chase shape: each load depends on the previous one and
    // misses everywhere. IPC ~ 1/missLatency.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 3000; ++i)
        ops.push_back(load(0x100000000ULL + i * 4096, 1));
    const CoreResult r = runOps(ops);
    EXPECT_LT(r.ipc, 0.02);
}

TEST(CoreTest, IndependentLoadsOverlapMisses)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 3000; ++i)
        ops.push_back(load(0x100000000ULL + i * 4096, 0));
    const CoreResult serial_free = runOps(ops);
    // Same misses, overlapped: at least 10x the serial version.
    EXPECT_GT(serial_free.ipc, 0.15);
}

TEST(CoreTest, MispredictsCostCycles)
{
    std::vector<MicroOp> clean(20000, alu());
    for (std::size_t i = 0; i < clean.size(); i += 10) {
        clean[i].cls = OpClass::Branch;
    }
    std::vector<MicroOp> noisy = clean;
    for (std::size_t i = 0; i < noisy.size(); i += 10)
        noisy[i].mispredicted = true;

    const CoreResult fast = runOps(clean);
    const CoreResult slow = runOps(noisy);
    EXPECT_GT(fast.ipc, slow.ipc * 1.5);
    EXPECT_EQ(slow.mispredicts, 2000u);
}

TEST(CoreTest, CountsOpClasses)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i) {
        ops.push_back(load(0x100000000ULL + i * 32));
        MicroOp st;
        st.cls = OpClass::Store;
        st.addr = 0x200000000ULL + i * 32;
        ops.push_back(st);
        MicroOp br;
        br.cls = OpClass::Branch;
        ops.push_back(br);
    }
    const CoreResult r = runOps(ops);
    EXPECT_EQ(r.loads, 100u);
    EXPECT_EQ(r.stores, 100u);
    EXPECT_EQ(r.branches, 100u);
    EXPECT_EQ(r.instructions, 300u);
}

TEST(CoreTest, StoresDoNotBlockRetirement)
{
    // Store misses drain through the write buffer: a stream of
    // missing stores retires far faster than missing loads.
    std::vector<MicroOp> stores, loads_v;
    for (int i = 0; i < 2000; ++i) {
        MicroOp st;
        st.cls = OpClass::Store;
        st.addr = 0x100000000ULL + i * 4096;
        stores.push_back(st);
        loads_v.push_back(load(0x200000000ULL + i * 4096, 1));
    }
    EXPECT_GT(runOps(stores).ipc, runOps(loads_v).ipc * 5);
}

TEST(CoreTest, RunStopsAtSourceEnd)
{
    std::vector<MicroOp> ops(50, alu());
    ScriptedSource src(ops);
    MachineConfig cfg;
    MemoryHierarchy mem(cfg);
    OooCore core(cfg.core, mem);
    const CoreResult r = core.run(src, 1000000);
    EXPECT_EQ(r.instructions, 50u);
}

TEST(CoreTest, ResetRestartsCleanly)
{
    MachineConfig cfg;
    MemoryHierarchy mem(cfg);
    OooCore core(cfg.core, mem);
    std::vector<MicroOp> ops(1000, alu());
    ScriptedSource src(ops);
    const CoreResult first = core.run(src, 1000);
    core.reset();
    mem.reset();
    src.reset();
    const CoreResult second = core.run(src, 1000);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.instructions, second.instructions);
}

TEST(CoreTest, NarrowWidthScalesDown)
{
    MachineConfig cfg;
    cfg.core.issue_width = 2;
    std::vector<MicroOp> ops(10000, alu());
    const CoreResult r = runOps(ops, cfg);
    EXPECT_LE(r.ipc, 2.0);
    EXPECT_GT(r.ipc, 1.5);
}

TEST(CoreTest, FuPortsConstrainThroughput)
{
    MachineConfig cfg;
    cfg.core.int_alu = 1; // single ALU
    std::vector<MicroOp> ops(10000, alu());
    const CoreResult r = runOps(ops, cfg);
    EXPECT_LE(r.ipc, 1.1);
}

// Memory-latency monotonicity: raising memory latency never raises
// IPC. Property-checked across several workloads.
class LatencyMonotonicityTest
    : public testing::TestWithParam<std::string>
{
};

TEST_P(LatencyMonotonicityTest, IpcNonIncreasingInMemoryLatency)
{
    double last_ipc = 1e9;
    for (Cycle lat : {10u, 70u, 300u}) {
        MachineConfig cfg;
        cfg.memory_latency = lat;
        auto wl = makeWorkload(GetParam(), 1);
        MemoryHierarchy mem(cfg);
        OooCore core(cfg.core, mem);
        const CoreResult r = core.run(*wl, 300000);
        EXPECT_LE(r.ipc, last_ipc * 1.01) << "lat=" << lat;
        last_ipc = r.ipc;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, LatencyMonotonicityTest,
                         testing::Values("swim", "mcf", "gzip",
                                         "gcc"));

} // namespace
} // namespace tcp
