/**
 * @file
 * Tests for the statistics package (counters, distributions, groups).
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace tcp {
namespace {

TEST(StatsTest, CounterIncrements)
{
    StatGroup g("g");
    Counter c(g, "events", "test events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsTest, DistributionMoments)
{
    StatGroup g("g");
    Distribution d(g, "lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(10.0);
    d.sample(20.0);
    d.sample(30.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 10.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 30.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatsTest, GroupReportContainsAll)
{
    StatGroup g("mem");
    Counter hits(g, "hits", "cache hits");
    Counter misses(g, "misses", "cache misses");
    hits += 3;
    misses += 1;
    const std::string report = g.report();
    EXPECT_NE(report.find("mem.hits"), std::string::npos);
    EXPECT_NE(report.find("mem.misses"), std::string::npos);
    EXPECT_NE(report.find("cache hits"), std::string::npos);
}

TEST(StatsTest, NestedGroupsPrefixNames)
{
    StatGroup parent("sys");
    StatGroup child(parent, "l1");
    Counter c(child, "hits", "hits");
    ++c;
    const std::string report = parent.report();
    EXPECT_NE(report.find("sys.l1.hits"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup parent("sys");
    StatGroup child(parent, "l1");
    Counter a(parent, "a", "a");
    Counter b(child, "b", "b");
    a += 2;
    b += 3;
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsTest, CounterLookupByName)
{
    StatGroup g("g");
    Counter c(g, "events", "e");
    c += 9;
    EXPECT_EQ(g.counter("events").value(), 9u);
}

TEST(StatsDeathTest, UnknownCounterPanics)
{
    StatGroup g("g");
    EXPECT_DEATH(g.counter("nope"), "no counter named");
}

TEST(StatsTest, TwoLevelNestingPrefixesAndSerializes)
{
    // Regression: a grandchild must carry the full dotted prefix in
    // the text report AND appear as a doubly nested object in the
    // JSON tree keyed by local names.
    StatGroup sys("sys");
    StatGroup l2(sys, "l2");
    StatGroup mshr(l2, "mshr");
    Counter hits(l2, "hits", "L2 hits");
    Counter stalls(mshr, "stalls", "MSHR full stalls");
    hits += 7;
    stalls += 2;

    EXPECT_EQ(l2.name(), "sys.l2");
    EXPECT_EQ(mshr.name(), "sys.l2.mshr");
    EXPECT_EQ(mshr.localName(), "mshr");

    const std::string report = sys.report();
    EXPECT_NE(report.find("sys.l2.hits"), std::string::npos);
    EXPECT_NE(report.find("sys.l2.mshr.stalls"), std::string::npos);

    const Json j = sys.toJson();
    EXPECT_EQ(j.at("l2").at("hits").asUint(), 7u);
    EXPECT_EQ(j.at("l2").at("mshr").at("stalls").asUint(), 2u);
}

TEST(StatsTest, GroupToJsonCoversAllStatKinds)
{
    StatGroup g("g");
    Counter c(g, "events", "events");
    Distribution d(g, "lat", "latency");
    Histogram h(g, "size", "sizes");
    c += 4;
    d.sample(2.0);
    d.sample(6.0);
    h.sample(3);

    const Json j = g.toJson();
    EXPECT_EQ(j.at("events").asUint(), 4u);
    EXPECT_EQ(j.at("lat").at("count").asUint(), 2u);
    EXPECT_DOUBLE_EQ(j.at("lat").at("mean").asDouble(), 4.0);
    EXPECT_EQ(j.at("size").at("total").asUint(), 1u);
}

TEST(StatsTest, QuantileBoundEmptyHistogram)
{
    StatGroup g("g");
    Histogram h(g, "h", "h");
    EXPECT_EQ(h.quantileBound(0.0), 0u);
    EXPECT_EQ(h.quantileBound(0.5), 0u);
    EXPECT_EQ(h.quantileBound(1.0), 0u);
}

TEST(StatsTest, QuantileBoundEdgeQuantiles)
{
    StatGroup g("g");
    Histogram h(g, "h", "h");
    for (int i = 0; i < 9; ++i)
        h.sample(10); // bucket bound 16
    h.sample(1000);   // bucket bound 1024

    // q=0 bounds the smallest observed sample, q=1 the largest.
    EXPECT_EQ(h.quantileBound(0.0), 16u);
    EXPECT_EQ(h.quantileBound(1.0), 1024u);
    // Out-of-range quantiles clamp instead of misbehaving.
    EXPECT_EQ(h.quantileBound(-0.5), 16u);
    EXPECT_EQ(h.quantileBound(2.0), 1024u);
    // Interior quantile: 9 of 10 samples sit in the 16-bucket.
    EXPECT_EQ(h.quantileBound(0.9), 16u);
    EXPECT_EQ(h.quantileBound(0.95), 1024u);
}

TEST(StatsTest, QuantileBoundSingleSampleAtZero)
{
    StatGroup g("g");
    Histogram h(g, "h", "h");
    h.sample(0); // bucket 0 bounds value 0
    EXPECT_EQ(h.quantileBound(0.0), 0u);
    EXPECT_EQ(h.quantileBound(0.5), 0u);
    EXPECT_EQ(h.quantileBound(1.0), 0u);
}

} // namespace
} // namespace tcp
