/**
 * @file
 * Tests for the statistics package (counters, distributions, groups).
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace tcp {
namespace {

TEST(StatsTest, CounterIncrements)
{
    StatGroup g("g");
    Counter c(g, "events", "test events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsTest, DistributionMoments)
{
    StatGroup g("g");
    Distribution d(g, "lat", "latency");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(10.0);
    d.sample(20.0);
    d.sample(30.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 10.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 30.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatsTest, GroupReportContainsAll)
{
    StatGroup g("mem");
    Counter hits(g, "hits", "cache hits");
    Counter misses(g, "misses", "cache misses");
    hits += 3;
    misses += 1;
    const std::string report = g.report();
    EXPECT_NE(report.find("mem.hits"), std::string::npos);
    EXPECT_NE(report.find("mem.misses"), std::string::npos);
    EXPECT_NE(report.find("cache hits"), std::string::npos);
}

TEST(StatsTest, NestedGroupsPrefixNames)
{
    StatGroup parent("sys");
    StatGroup child(parent, "l1");
    Counter c(child, "hits", "hits");
    ++c;
    const std::string report = parent.report();
    EXPECT_NE(report.find("sys.l1.hits"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup parent("sys");
    StatGroup child(parent, "l1");
    Counter a(parent, "a", "a");
    Counter b(child, "b", "b");
    a += 2;
    b += 3;
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsTest, CounterLookupByName)
{
    StatGroup g("g");
    Counter c(g, "events", "e");
    c += 9;
    EXPECT_EQ(g.counter("events").value(), 9u);
}

TEST(StatsDeathTest, UnknownCounterPanics)
{
    StatGroup g("g");
    EXPECT_DEATH(g.counter("nope"), "no counter named");
}

} // namespace
} // namespace tcp
