/**
 * @file
 * Tests for the set-associative cache model: address decomposition,
 * hit/miss behaviour, LRU replacement checked against a reference
 * model, and metadata handling. Geometry coverage uses parameterized
 * suites over (size, assoc, block) combinations.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "check/reference.hh"
#include "mem/cache.hh"
#include "util/random.hh"

namespace tcp {
namespace {

CacheConfig
cfg(std::uint64_t size, unsigned assoc, unsigned block)
{
    return CacheConfig{"test", size, assoc, block, 1, 8};
}

TEST(CacheTest, AddressDecompositionRoundTrip)
{
    CacheModel c(cfg(32 * 1024, 1, 32));
    EXPECT_EQ(c.numSets(), 1024u);
    EXPECT_EQ(c.blockBytes(), 32u);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = rng.next() & ((1ULL << 44) - 1);
        const Addr block = c.blockAlign(addr);
        EXPECT_EQ(c.addrOf(c.tagOf(addr), c.setOf(addr)), block);
        EXPECT_EQ(block % c.blockBytes(), 0u);
        EXPECT_LT(c.setOf(addr), c.numSets());
    }
}

TEST(CacheTest, MissThenHit)
{
    CacheModel c(cfg(1024, 2, 32));
    EXPECT_EQ(c.access(0x100, 1), nullptr);
    c.fill(0x100, 1);
    EXPECT_NE(c.access(0x100, 2), nullptr);
    // Same block, different offset.
    EXPECT_NE(c.access(0x11f, 3), nullptr);
    // Next block misses.
    EXPECT_EQ(c.access(0x120, 4), nullptr);
}

TEST(CacheTest, ProbeDoesNotTouchLru)
{
    CacheModel c(cfg(64, 2, 32)); // 1 set, 2 ways
    c.fill(0x000, 1);
    c.fill(0x100, 2);
    // Probing 0x000 must not refresh it; 0x000 stays LRU.
    for (int i = 0; i < 10; ++i)
        EXPECT_NE(c.probe(0x000), nullptr);
    auto ev = c.fill(0x200, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->block_addr, 0x000u);
}

TEST(CacheTest, AccessRefreshesLru)
{
    CacheModel c(cfg(64, 2, 32));
    c.fill(0x000, 1);
    c.fill(0x100, 2);
    EXPECT_NE(c.access(0x000, 3), nullptr); // refresh 0x000
    auto ev = c.fill(0x200, 4);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->block_addr, 0x100u); // 0x100 is now LRU
}

TEST(CacheTest, FillPrefersInvalidWay)
{
    CacheModel c(cfg(128, 4, 32)); // 1 set, 4 ways
    EXPECT_FALSE(c.fill(0x000, 1).has_value());
    EXPECT_FALSE(c.fill(0x100, 2).has_value());
    EXPECT_FALSE(c.fill(0x200, 3).has_value());
    EXPECT_FALSE(c.fill(0x300, 4).has_value());
    EXPECT_TRUE(c.fill(0x400, 5).has_value());
}

TEST(CacheTest, VictimOfNullWhenFreeWay)
{
    CacheModel c(cfg(128, 4, 32));
    c.fill(0x000, 1);
    EXPECT_EQ(c.victimOf(0x400), nullptr);
    c.fill(0x100, 2);
    c.fill(0x200, 3);
    c.fill(0x300, 4);
    const CacheLine *victim = c.victimOf(0x400);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->tag, c.tagOf(0x000));
}

TEST(CacheTest, InvalidateRemovesBlock)
{
    CacheModel c(cfg(1024, 2, 32));
    c.fill(0x40, 1);
    EXPECT_NE(c.probe(0x40), nullptr);
    c.invalidate(0x40);
    EXPECT_EQ(c.probe(0x40), nullptr);
    c.invalidate(0x40); // idempotent
}

TEST(CacheTest, FlushEmptiesEverything)
{
    CacheModel c(cfg(1024, 2, 32));
    for (Addr a = 0; a < 1024; a += 32)
        c.fill(a, 1);
    c.flush();
    for (Addr a = 0; a < 1024; a += 32)
        EXPECT_EQ(c.probe(a), nullptr);
}

TEST(CacheTest, DirtyBitSurvivesUntilEviction)
{
    CacheModel c(cfg(64, 1, 32)); // 2 sets, direct-mapped
    c.fill(0x00, 1);
    c.access(0x00, 2)->dirty = true;
    auto ev = c.fill(0x40, 3); // same set (set 0), evicts 0x00
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->block_addr, 0x00u);
}

TEST(CacheTest, SetOccupancyCounts)
{
    CacheModel c(cfg(256, 4, 32)); // 2 sets
    EXPECT_EQ(c.setOccupancy(0x00), 0u);
    c.fill(0x000, 1);  // set 0
    c.fill(0x100, 2);  // set 0
    c.fill(0x020, 3);  // set 1
    EXPECT_EQ(c.setOccupancy(0x00), 2u);
    EXPECT_EQ(c.setOccupancy(0x20), 1u);
}

TEST(CacheDeathTest, DoubleFillPanics)
{
    CacheModel c(cfg(1024, 2, 32));
    c.fill(0x40, 1);
    EXPECT_DEATH(c.fill(0x40, 2), "already-resident");
}

TEST(CacheTest, MetadataDefaultsOnFill)
{
    CacheModel c(cfg(1024, 2, 32));
    c.fill(0x40, 77);
    const CacheLine *line = c.probe(0x40);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->fill_cycle, 77u);
    EXPECT_EQ(line->last_access, 77u);
    EXPECT_FALSE(line->dirty);
    EXPECT_FALSE(line->prefetched);
    EXPECT_FALSE(line->demand_touched);
}

// ---------------------------------------------------------------------
// Parameterized geometry sweep with an LRU reference model.

struct Geometry
{
    std::uint64_t size;
    unsigned assoc;
    unsigned block;
};

class CacheGeometryTest : public testing::TestWithParam<Geometry>
{
};

/** Simple reference: per-set list of blocks in LRU order. */
class RefLru
{
  public:
    RefLru(const CacheModel &c) : cache_(c) {}

    /** @return true on hit; updates reference state like the model. */
    bool
    accessAndFill(Addr addr)
    {
        const Addr block = cache_.blockAlign(addr);
        const SetIndex set = cache_.setOf(addr);
        auto &list = sets_[set]; // front = MRU
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (*it == block) {
                list.erase(it);
                list.push_front(block);
                return true;
            }
        }
        list.push_front(block);
        if (list.size() > cache_.assoc())
            list.pop_back();
        return false;
    }

  private:
    const CacheModel &cache_;
    std::map<SetIndex, std::list<Addr>> sets_;
};

TEST_P(CacheGeometryTest, MatchesReferenceLru)
{
    const Geometry g = GetParam();
    CacheModel c(cfg(g.size, g.assoc, g.block));
    RefLru ref(c);
    Rng rng(99);
    Cycle now = 0;
    // Confined address range creates plenty of conflicts.
    const Addr range = g.size * 4;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(range);
        const bool model_hit = c.access(addr, ++now) != nullptr;
        const bool ref_hit = ref.accessAndFill(addr);
        ASSERT_EQ(model_hit, ref_hit) << "i=" << i << " addr=" << addr;
        if (!model_hit)
            c.fill(addr, now);
    }
}

TEST_P(CacheGeometryTest, OccupancyNeverExceedsWays)
{
    const Geometry g = GetParam();
    CacheModel c(cfg(g.size, g.assoc, g.block));
    Rng rng(7);
    Cycle now = 0;
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(g.size * 8);
        if (!c.access(addr, ++now))
            c.fill(addr, now);
        ASSERT_LE(c.setOccupancy(addr), g.assoc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    testing::Values(Geometry{1024, 1, 32}, Geometry{1024, 2, 32},
                    Geometry{4096, 4, 64}, Geometry{32 * 1024, 1, 32},
                    Geometry{32 * 1024, 4, 32},
                    Geometry{64 * 1024, 8, 64},
                    Geometry{1024 * 1024, 4, 64}),
    [](const testing::TestParamInfo<Geometry> &info) {
        return std::to_string(info.param.size) + "B_" +
               std::to_string(info.param.assoc) + "w_" +
               std::to_string(info.param.block) + "b";
    });

// ---------------------------------------------------------------------
// Differential sweep against the src/check reference directory under
// invalidate interleavings — the exact pattern the fuzzer seeds. Every
// policy must agree on hit/miss, the eviction stream, and the full
// per-set directory state while invalidations keep punching holes into
// the valid-prefix fast path.

class CachePolicyDiffTest : public testing::TestWithParam<ReplPolicy>
{
};

TEST_P(CachePolicyDiffTest, InvalidateInterleavingsMatchReference)
{
    CacheConfig config = cfg(2048, 4, 32);
    config.repl = GetParam();
    CacheModel real(config);
    RefCache ref(config);
    Rng rng(2026);
    Cycle now = 0;
    // Few sets + a narrow address range: conflicts and re-fills of
    // invalidated ways happen constantly.
    const Addr range = 2048 * 6;
    for (int i = 0; i < 30000; ++i) {
        const Addr addr = rng.below(range);
        if (rng.chance(0.12)) {
            real.invalidate(addr);
            ref.invalidate(addr);
        } else if (rng.chance(0.001)) {
            real.flush();
            ref.flush();
        } else {
            ++now;
            const bool real_hit = real.access(addr, now) != nullptr;
            const bool ref_hit = ref.access(addr);
            ASSERT_EQ(real_hit, ref_hit)
                << "i=" << i << " addr=" << addr;
            if (!real_hit) {
                const auto real_ev = real.fill(addr, now);
                const auto ref_ev = ref.fill(addr);
                ASSERT_EQ(real_ev.has_value(), ref_ev.has_value())
                    << "i=" << i << " addr=" << addr;
                if (real_ev) {
                    ASSERT_EQ(real_ev->block_addr, ref_ev->block_addr)
                        << "i=" << i;
                    ASSERT_EQ(real_ev->dirty, ref_ev->dirty)
                        << "i=" << i;
                }
            }
            if (rng.chance(0.25)) {
                real.access(addr, now)->dirty = true;
                ref.setDirty(addr);
                ref.access(addr); // mirror the recency refresh
            }
        }
        // Full directory comparison of the touched set.
        const SetIndex set = real.setOf(addr);
        for (unsigned w = 0; w < real.assoc(); ++w) {
            const CacheLine &rl = real.lineAt(set, w);
            const RefLine &fl = ref.lineAt(set, w);
            ASSERT_EQ(rl.valid, fl.valid)
                << "i=" << i << " set=" << set << " way=" << w;
            if (rl.valid) {
                ASSERT_EQ(rl.tag, fl.tag)
                    << "i=" << i << " set=" << set << " way=" << w;
                ASSERT_EQ(rl.dirty, fl.dirty)
                    << "i=" << i << " set=" << set << " way=" << w;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyDiffTest,
                         testing::Values(ReplPolicy::LRU,
                                         ReplPolicy::Random,
                                         ReplPolicy::TreePLRU),
                         [](const testing::TestParamInfo<ReplPolicy> &i) {
                             switch (i.param) {
                               case ReplPolicy::LRU:
                                 return "LRU";
                               case ReplPolicy::Random:
                                 return "Random";
                               default:
                                 return "TreePLRU";
                             }
                         });

} // namespace
} // namespace tcp
