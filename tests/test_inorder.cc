/**
 * @file
 * Tests for the in-order stall-on-use core model and its contrast
 * with the out-of-order model.
 */

#include <gtest/gtest.h>

#include "cpu/inorder_core.hh"
#include "harness/runner.hh"
#include "trace/workloads.hh"

namespace tcp {
namespace {

class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {
    }
    bool
    next(MicroOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }
    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
    std::string name_ = "vector";
};

MicroOp
alu(std::uint8_t dep1 = 0)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = 0x400000;
    op.dep1 = dep1;
    return op;
}

MicroOp
load(Addr addr, std::uint8_t dep1 = 0)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.pc = 0x400010;
    op.addr = addr;
    op.dep1 = dep1;
    return op;
}

CoreResult
runInorder(std::vector<MicroOp> ops, InorderConfig icfg = {})
{
    VectorSource src(std::move(ops));
    MachineConfig cfg;
    MemoryHierarchy mem(cfg);
    InorderCore core(icfg, mem);
    return core.run(src, 1 << 30);
}

TEST(InorderCoreTest, SingleIssueCapsIpc)
{
    std::vector<MicroOp> ops(5000, alu());
    const CoreResult r = runInorder(ops);
    EXPECT_LE(r.ipc, 1.0);
    EXPECT_GT(r.ipc, 0.9);
}

TEST(InorderCoreTest, WiderIssueHelpsIndependentWork)
{
    std::vector<MicroOp> ops(5000, alu());
    InorderConfig wide;
    wide.issue_width = 2;
    const CoreResult r = runInorder(ops, wide);
    EXPECT_GT(r.ipc, 1.3);
    EXPECT_LE(r.ipc, 2.0);
}

TEST(InorderCoreTest, StallOnUseExposesLoadLatencyToConsumers)
{
    // load; dependent alu — every pair serialises on the miss.
    std::vector<MicroOp> chained;
    for (int i = 0; i < 1000; ++i) {
        chained.push_back(load(0x100000000ULL + i * 4096));
        chained.push_back(alu(1));
    }
    // load; independent alu — the loads overlap up to the MLP limit.
    std::vector<MicroOp> free;
    for (int i = 0; i < 1000; ++i) {
        free.push_back(load(0x200000000ULL + i * 4096));
        free.push_back(alu(0));
    }
    const CoreResult slow = runInorder(chained);
    const CoreResult fast = runInorder(free);
    EXPECT_GT(fast.ipc, slow.ipc * 1.5);
}

TEST(InorderCoreTest, OutstandingLoadLimitBinds)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 2000; ++i)
        ops.push_back(load(0x100000000ULL + i * 4096));
    InorderConfig one;
    one.outstanding_loads = 1;
    InorderConfig eight;
    eight.outstanding_loads = 8;
    const CoreResult serial = runInorder(ops, one);
    const CoreResult parallel = runInorder(ops, eight);
    EXPECT_GT(parallel.ipc, serial.ipc * 3);
}

TEST(InorderCoreTest, MoreLatencySensitiveThanOoO)
{
    // The architectural point of the model: on the same machine and
    // workload, the in-order core leaves more memory latency exposed
    // (lower IPC) than the 128-entry-window OoO core.
    auto wl_a = makeWorkload("applu", 1);
    MachineConfig cfg;
    MemoryHierarchy mem_a(cfg);
    OooCore ooo(cfg.core, mem_a);
    const CoreResult r_ooo = ooo.run(*wl_a, 200000);

    auto wl_b = makeWorkload("applu", 1);
    MemoryHierarchy mem_b(cfg);
    InorderCore ino(InorderConfig{}, mem_b);
    const CoreResult r_ino = ino.run(*wl_b, 200000);

    EXPECT_GT(r_ooo.ipc, r_ino.ipc * 1.5);
}

TEST(InorderCoreTest, PrefetchingHelpsInorderMore)
{
    // Relative TCP benefit should be at least comparable on the
    // in-order core (it cannot hide any latency itself).
    auto run_engine = [&](const char *engine) {
        auto wl = makeWorkload("applu", 1);
        EngineSetup e = makeEngine(engine);
        MachineConfig cfg;
        MemoryHierarchy mem(cfg, e.prefetcher.get(), e.dbp.get());
        InorderCore core(InorderConfig{}, mem);
        core.run(*wl, 300000);
        return core.run(*wl, 300000).ipc;
    };
    const double base = run_engine("none");
    const double tcp8k = run_engine("tcp8k");
    EXPECT_GT(tcp8k, base * 1.2);
}

TEST(InorderCoreTest, ResetRestartsCleanly)
{
    std::vector<MicroOp> ops(500, alu());
    VectorSource src(ops);
    MachineConfig cfg;
    MemoryHierarchy mem(cfg);
    InorderCore core(InorderConfig{}, mem);
    const CoreResult a = core.run(src, 500);
    core.reset();
    mem.reset();
    src.reset();
    const CoreResult b = core.run(src, 500);
    EXPECT_EQ(a.cycles, b.cycles);
}

// ---------------------------------------------------------------------
// L2-trained placement

TEST(PlacementTest, L2TrainedEngineCoversL2Misses)
{
    const RunResult r = runNamed("applu", "tcpl2_8k", 300000);
    EXPECT_GT(r.pf_issued, 0u);
    EXPECT_GT(r.pf_useful, 0u);
    // Classification invariant still holds.
    EXPECT_EQ(r.prefetched_original + r.nonprefetched_original,
              r.original_l2);
}

TEST(PlacementTest, L1PlacementAtLeastMatchesOnMostWorkloads)
{
    // The paper's placement (L1 miss stream) sees a richer history;
    // it should not lose to L2 training on the strided codes.
    const RunResult base = runNamed("applu", "none", 300000);
    const RunResult l1 = runNamed("applu", "tcp8k", 300000);
    const RunResult l2 = runNamed("applu", "tcpl2_8k", 300000);
    EXPECT_GE(l1.ipc(), l2.ipc() * 0.95);
    EXPECT_GT(l1.ipc(), base.ipc());
}

} // namespace
} // namespace tcp
