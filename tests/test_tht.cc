/**
 * @file
 * Tests for the Tag History Table (first level of TCP).
 */

#include <gtest/gtest.h>

#include "core/tht.hh"

namespace tcp {
namespace {

TEST(ThtTest, StartsEmpty)
{
    TagHistoryTable tht(1024, 2);
    for (SetIndex s : {0u, 1u, 1023u})
        EXPECT_FALSE(tht.full(s));
}

TEST(ThtTest, FillsAfterDepthPushes)
{
    TagHistoryTable tht(1024, 2);
    tht.push(5, 100);
    EXPECT_FALSE(tht.full(5));
    tht.push(5, 101);
    EXPECT_TRUE(tht.full(5));
    // Other rows unaffected.
    EXPECT_FALSE(tht.full(6));
}

TEST(ThtTest, ShiftSemanticsOldestFirst)
{
    TagHistoryTable tht(16, 3);
    tht.push(2, 10);
    tht.push(2, 20);
    tht.push(2, 30);
    auto h = tht.history(2);
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0], 10u);
    EXPECT_EQ(h[1], 20u);
    EXPECT_EQ(h[2], 30u);
    tht.push(2, 40);
    h = tht.history(2);
    EXPECT_EQ(h[0], 20u);
    EXPECT_EQ(h[1], 30u);
    EXPECT_EQ(h[2], 40u);
}

TEST(ThtTest, DepthOne)
{
    TagHistoryTable tht(16, 1);
    EXPECT_FALSE(tht.full(0));
    tht.push(0, 7);
    EXPECT_TRUE(tht.full(0));
    EXPECT_EQ(tht.history(0)[0], 7u);
    tht.push(0, 8);
    EXPECT_EQ(tht.history(0)[0], 8u);
}

TEST(ThtTest, RowFolding)
{
    TagHistoryTable tht(16, 2);
    EXPECT_EQ(tht.rowOf(3), 3u);
    EXPECT_EQ(tht.rowOf(19), 3u);  // 19 % 16
    tht.push(3, 1);
    tht.push(19, 2); // same row
    EXPECT_TRUE(tht.full(3));
}

TEST(ThtTest, ResetInvalidatesAll)
{
    TagHistoryTable tht(8, 2);
    for (SetIndex s = 0; s < 8; ++s) {
        tht.push(s, 1);
        tht.push(s, 2);
    }
    tht.reset();
    for (SetIndex s = 0; s < 8; ++s) {
        EXPECT_FALSE(tht.full(s));
        EXPECT_EQ(tht.history(s)[0], kInvalidTag);
    }
}

TEST(ThtTest, StorageFormula)
{
    // THTSize = #sets x k x |tag| (Section 4).
    TagHistoryTable tht(1024, 2);
    EXPECT_EQ(tht.storageBits(16), 1024u * 2 * 16);
    EXPECT_EQ(tht.storageBits(20), 1024u * 2 * 20);
    TagHistoryTable deep(512, 4);
    EXPECT_EQ(deep.storageBits(16), 512u * 4 * 16);
}

TEST(ThtTest, IndependentRows)
{
    TagHistoryTable tht(4, 2);
    tht.push(0, 1);
    tht.push(0, 2);
    tht.push(1, 3);
    tht.push(1, 4);
    EXPECT_EQ(tht.history(0)[1], 2u);
    EXPECT_EQ(tht.history(1)[1], 4u);
}

} // namespace
} // namespace tcp
