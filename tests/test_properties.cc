/**
 * @file
 * Cross-module property and fuzz tests: randomised inputs checked
 * against reference models and global invariants. These complement
 * the per-module unit tests with the "for all inputs" guarantees the
 * simulator's conclusions rest on.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "core/tcp.hh"
#include "harness/runner.hh"
#include "mem/bus.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

namespace tcp {
namespace {

// ---------------------------------------------------------------------
// Bus: bandwidth conservation and causality under fuzzed requests.

TEST(BusPropertyTest, FuzzedRequestsConserveBandwidthAndCausality)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Bus bus(BusConfig{"fuzz", 32});
        Rng rng(seed);
        Cycle base = 0;
        std::uint64_t total_cycles = 0;
        Cycle max_done = 0;
        for (int i = 0; i < 5000; ++i) {
            // Jittered timestamps around a moving frontier.
            base += rng.below(4);
            const Cycle now = base + rng.below(200);
            const unsigned bytes =
                static_cast<unsigned>(8 + rng.below(120));
            const Cycle need = bus.transferCycles(bytes);
            const Cycle done = bus.request(now, bytes);
            // Causality: a transfer cannot finish before its request
            // plus its own duration.
            ASSERT_GE(done, now + need);
            total_cycles += need;
            max_done = std::max(max_done, done);
        }
        // Conservation: the busy time fits in the elapsed window.
        ASSERT_EQ(bus.busyCycles(), total_cycles);
        ASSERT_GE(max_done, total_cycles / 2);
    }
}

// ---------------------------------------------------------------------
// TCP: against an oracle (exact dictionary) predictor on random
// periodic per-set streams. A large-enough PHT must match the oracle
// after one full period.

class TcpOracleTest : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TcpOracleTest, MatchesOracleOnPeriodicStreams)
{
    Rng rng(GetParam());

    // Random periodic tag streams in a handful of sets.
    const unsigned sets = 8;
    const unsigned period = 12;
    std::vector<std::vector<Tag>> lap(sets);
    for (unsigned s = 0; s < sets; ++s) {
        // Distinct consecutive tags so every transition is
        // unambiguous given (prev, cur) context... collisions across
        // sets are fine (that is TCP's sharing).
        std::map<std::pair<Tag, Tag>, Tag> used;
        for (unsigned i = 0; i < period; ++i)
            lap[s].push_back(1 + rng.below(6) + 10 * i);
    }

    TcpConfig cfg = TcpConfig::tcp8m(); // private: no cross-set alias
    TagCorrelatingPrefetcher pf(cfg);

    // Oracle: per-set map from (t1, t2) to successor.
    std::map<std::tuple<unsigned, Tag, Tag>, Tag> oracle;

    auto addr_of = [&](Tag t, unsigned s) {
        return pf.rebuildAddr(t, s);
    };

    // Two laps of training.
    for (int rep = 0; rep < 2; ++rep) {
        for (unsigned i = 0; i < period; ++i) {
            for (unsigned s = 0; s < sets; ++s) {
                std::vector<PrefetchRequest> out;
                pf.observeMiss(AccessContext{addr_of(lap[s][i], s), 0,
                                             0, false,
                                             AccessType::Read},
                               out);
                const Tag prev1 = lap[s][(i + period - 2) % period];
                const Tag prev2 = lap[s][(i + period - 1) % period];
                (void)prev1;
                oracle[{s, prev2, lap[s][i]}] =
                    lap[s][(i + 1) % period];
            }
        }
    }

    // Third lap: TCP must predict what the oracle predicts whenever
    // the (prev, cur) pair is unambiguous in that set's lap.
    unsigned checked = 0;
    for (unsigned i = 0; i < period; ++i) {
        for (unsigned s = 0; s < sets; ++s) {
            std::vector<PrefetchRequest> out;
            pf.observeMiss(AccessContext{addr_of(lap[s][i], s), 0, 0,
                                         false, AccessType::Read},
                           out);
            const Tag prev = lap[s][(i + period - 1) % period];
            // Ambiguity check: does (prev, cur) appear twice in the
            // lap with different successors?
            unsigned occurrences = 0;
            bool ambiguous = false;
            Tag succ = kInvalidTag;
            for (unsigned j = 0; j < period; ++j) {
                if (lap[s][(j + period - 1) % period] == prev &&
                    lap[s][j] == lap[s][i]) {
                    ++occurrences;
                    const Tag this_succ = lap[s][(j + 1) % period];
                    if (succ != kInvalidTag && this_succ != succ)
                        ambiguous = true;
                    succ = this_succ;
                }
            }
            if (ambiguous || occurrences == 0)
                continue;
            if (succ == lap[s][i])
                continue; // self-target, suppressed by design
            ++checked;
            ASSERT_EQ(out.size(), 1u)
                << "set " << s << " i " << i << " seed " << GetParam();
            ASSERT_EQ(out[0].addr, addr_of(succ, s));
        }
    }
    EXPECT_GT(checked, period * sets / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpOracleTest,
                         testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------
// Hierarchy: fuzzed access streams keep global invariants.

TEST(HierarchyPropertyTest, FuzzedAccessesKeepInvariants)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        MachineConfig cfg;
        EngineSetup engine = makeEngine("tcp8k");
        MemoryHierarchy mem(cfg, engine.prefetcher.get());
        Rng rng(seed);
        Cycle now = 0;
        for (int i = 0; i < 20000; ++i) {
            now += rng.below(5);
            const Cycle jitter_now = now + rng.below(100);
            const Addr addr =
                0x100000000ULL + rng.below(1 << 22);
            const AccessType type = rng.chance(0.2)
                                        ? AccessType::Write
                                        : AccessType::Read;
            const AccessResult r =
                mem.dataAccess(addr, type, 0x400000 + (i % 64) * 4,
                               jitter_now);
            // Causality: completion strictly after the request.
            ASSERT_GT(r.complete, jitter_now);
            // A miss costs at least the L2 path.
            if (!r.l1_hit) {
                ASSERT_GE(r.complete,
                          jitter_now + cfg.l1d.latency +
                              cfg.l2.latency);
            }
        }
        // Classification invariant after arbitrary interleavings.
        ASSERT_EQ(mem.prefetched_original.value() +
                      mem.nonprefetched_original.value(),
                  mem.original_l2.value());
        // Hit/miss counts add up.
        ASSERT_EQ(mem.l1d_hits.value() + mem.l1d_misses.value(),
                  20000u);
    }
}

// ---------------------------------------------------------------------
// End-to-end determinism across every engine family.

class DeterminismTest : public testing::TestWithParam<const char *>
{
};

TEST_P(DeterminismTest, TwoRunsBitIdentical)
{
    const RunResult a = runNamed("gcc", GetParam(), 60000);
    const RunResult b = runNamed("gcc", GetParam(), 60000);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.l1d_misses, b.l1d_misses);
    EXPECT_EQ(a.l2_demand_misses, b.l2_demand_misses);
    EXPECT_EQ(a.pf_issued, b.pf_issued);
    EXPECT_EQ(a.pf_useful, b.pf_useful);
    EXPECT_EQ(a.promotions_l1, b.promotions_l1);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeterminismTest,
    testing::Values("none", "stride", "stream", "markov", "dbcp2m",
                    "tcp8k", "tcp8m", "hybrid8k", "tcps8k", "tcpmt8k",
                    "tcpcrit8k", "tcpl2_8k", "tcpa8k", "naive_l1_8k"),
    [](const testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

// ---------------------------------------------------------------------
// Storage formulas stay consistent across the design space.

TEST(StoragePropertyTest, PhtCostScalesLinearly)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        PhtConfig a = PhtConfig::ofSize(
            1024ull << rng.below(12), 0);
        PhtConfig b = a;
        b.sets *= 2;
        EXPECT_EQ(b.storageBits(), 2 * a.storageBits());
    }
}

TEST(StoragePropertyTest, TcpConfigsAccountEveryTable)
{
    // The prefetcher's reported budget always matches its config.
    for (const char *name :
         {"tcp8k", "tcp8m", "tcps8k", "tcpmt8k", "tcpgshare8k"}) {
        EngineSetup e = makeEngine(name);
        EXPECT_GT(e.prefetcher->storageBits(), 0u) << name;
    }
    // And the paper's headline ratio holds structurally.
    EXPECT_GT(makeEngine("dbcp2m").prefetcher->storageBits() /
                  makeEngine("tcp8k").prefetcher->storageBits(),
              100u);
}

// ---------------------------------------------------------------------
// Workload statistics stay within their behavioural class.

TEST(WorkloadPropertyTest, MemoryIntensityBands)
{
    // Memory-bound workloads must issue far more memory ops per
    // instruction than the compute-bound ones.
    auto mem_ratio = [](const char *name) {
        auto wl = makeWorkload(name, 1);
        MicroOp op;
        std::uint64_t mem = 0;
        const int n = 30000;
        for (int i = 0; i < n; ++i) {
            wl->next(op);
            mem += op.isMem() ? 1 : 0;
        }
        return static_cast<double>(mem) / n;
    };
    EXPECT_GT(mem_ratio("mcf"), 0.2);
    EXPECT_GT(mem_ratio("swim"), 0.2);
    EXPECT_LT(mem_ratio("eon"), 0.15);
    EXPECT_LT(mem_ratio("sixtrack"), 0.15);
}

} // namespace
} // namespace tcp
