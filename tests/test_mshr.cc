/**
 * @file
 * Tests for the MSHR capacity model.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace tcp {
namespace {

TEST(MshrTest, FreeWhenEmpty)
{
    MshrFile m(4);
    EXPECT_EQ(m.earliestFree(100), 100u);
    EXPECT_EQ(m.outstanding(100), 0u);
}

TEST(MshrTest, FillsUpThenStalls)
{
    MshrFile m(2);
    m.allocate(50);
    m.allocate(60);
    // Both busy at cycle 10: the earliest retirement is 50.
    EXPECT_EQ(m.earliestFree(10), 50u);
    // At cycle 50 the first entry drains.
    EXPECT_EQ(m.earliestFree(50), 50u);
    EXPECT_EQ(m.outstanding(50), 1u);
}

TEST(MshrTest, DrainsInReadyOrder)
{
    MshrFile m(3);
    m.allocate(30);
    m.allocate(10);
    m.allocate(20);
    EXPECT_EQ(m.earliestFree(5), 10u);
    EXPECT_EQ(m.outstanding(15), 2u);
    EXPECT_EQ(m.outstanding(25), 1u);
    EXPECT_EQ(m.outstanding(35), 0u);
}

TEST(MshrTest, UnlimitedNeverStalls)
{
    MshrFile m(0);
    for (Cycle c = 0; c < 1000; ++c)
        m.allocate(c + 500);
    EXPECT_EQ(m.earliestFree(3), 3u);
    EXPECT_EQ(m.outstanding(3), 0u); // unlimited tracks nothing
}

TEST(MshrTest, ResetClears)
{
    MshrFile m(1);
    m.allocate(1000);
    EXPECT_EQ(m.earliestFree(0), 1000u);
    m.reset();
    EXPECT_EQ(m.earliestFree(0), 0u);
}

TEST(MshrTest, CapacityAccessor)
{
    EXPECT_EQ(MshrFile(64).capacity(), 64u);
    EXPECT_EQ(MshrFile(0).capacity(), 0u);
}

} // namespace
} // namespace tcp
