/**
 * @file
 * Tests for the MSHR capacity model, including the allocate()
 * contract: callers must honour earliestFree(), and allocating at
 * capacity is a violation (panic in debug builds, counted in
 * overflowAllocs() in release builds) instead of the silent
 * earliest-miss drop it used to be.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace tcp {
namespace {

TEST(MshrTest, FreeWhenEmpty)
{
    MshrFile m(4);
    EXPECT_EQ(m.earliestFree(100), 100u);
    EXPECT_EQ(m.outstanding(100), 0u);
}

TEST(MshrTest, FillsUpThenStalls)
{
    MshrFile m(2);
    m.allocate(0, 50);
    m.allocate(0, 60);
    // Both busy at cycle 10: the earliest retirement is 50.
    EXPECT_EQ(m.earliestFree(10), 50u);
    // At cycle 50 the first entry drains.
    EXPECT_EQ(m.earliestFree(50), 50u);
    EXPECT_EQ(m.outstanding(50), 1u);
}

TEST(MshrTest, DrainsInReadyOrder)
{
    MshrFile m(3);
    m.allocate(0, 30);
    m.allocate(0, 10);
    m.allocate(0, 20);
    EXPECT_EQ(m.earliestFree(5), 10u);
    EXPECT_EQ(m.outstanding(15), 2u);
    EXPECT_EQ(m.outstanding(25), 1u);
    EXPECT_EQ(m.outstanding(35), 0u);
}

TEST(MshrTest, UnlimitedNeverStalls)
{
    MshrFile m(0);
    for (Cycle c = 0; c < 1000; ++c)
        m.allocate(c, c + 500);
    EXPECT_EQ(m.earliestFree(3), 3u);
    EXPECT_EQ(m.outstanding(3), 0u); // unlimited tracks nothing
}

TEST(MshrTest, ResetClears)
{
    MshrFile m(1);
    m.allocate(0, 1000);
    EXPECT_EQ(m.earliestFree(0), 1000u);
    m.reset();
    EXPECT_EQ(m.earliestFree(0), 0u);
    EXPECT_EQ(m.overflowAllocs(), 0u);
}

TEST(MshrTest, CapacityAccessor)
{
    EXPECT_EQ(MshrFile(64).capacity(), 64u);
    EXPECT_EQ(MshrFile(0).capacity(), 0u);
}

// The saturation pattern the fuzzer seeds: a burst of back-to-back
// misses against a small file. A caller that waits for earliestFree()
// before each allocation never violates the contract, no matter how
// deep the burst.
TEST(MshrTest, SaturationBurstHonouringContract)
{
    MshrFile m(2);
    Cycle now = 0;
    for (int i = 0; i < 64; ++i) {
        const Cycle start = std::max(now, m.earliestFree(now));
        m.allocate(start, start + 100);
    }
    EXPECT_EQ(m.overflowAllocs(), 0u);
    // 64 misses serialized two-at-a-time over a 100-cycle latency:
    // the file must still drain completely.
    EXPECT_EQ(m.outstanding(64 * 100), 0u);
}

TEST(MshrTest, AllocateAtCapacityIsAContractViolation)
{
    MshrFile m(1);
    m.allocate(0, 1000);
#ifndef NDEBUG
    EXPECT_DEATH(m.allocate(0, 2000), "ignored earliestFree");
#else
    // Release builds count the violation instead of aborting.
    m.allocate(0, 2000);
    EXPECT_EQ(m.overflowAllocs(), 1u);
    m.reset();
    EXPECT_EQ(m.overflowAllocs(), 0u);
#endif
}

TEST(MshrTest, AllocateAfterDrainIsNotAViolation)
{
    MshrFile m(1);
    m.allocate(0, 10);
    // By cycle 10 the in-flight miss has completed: the register is
    // free again and this allocation is within contract.
    m.allocate(10, 20);
    EXPECT_EQ(m.overflowAllocs(), 0u);
    EXPECT_EQ(m.outstanding(15), 1u);
}

} // namespace
} // namespace tcp
