/**
 * @file
 * Figure 2: number of unique cache tags (top) and average number of
 * times each tag re-appears (bottom) in the miss stream of a 32 KB
 * direct-mapped L1 data cache.
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 2: unique tags and tag recurrence", opt);

    TextTable table("Fig 2: tag recurrence in the L1-D miss stream");
    table.setHeader({"workload", "misses", "unique tags",
                     "appearances/tag"});
    const auto stats = bench::mapWorkloads<TagStatsResult>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return an.tagStats();
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const TagStatsResult &t = stats[w];
        table.addRow({opt.workloads[w], std::to_string(t.misses),
                      std::to_string(t.unique_tags),
                      formatDouble(t.mean_appearances_per_tag, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig02_tag_recurrence", {&table});
    return 0;
}
