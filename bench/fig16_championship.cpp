/**
 * @file
 * Figure 16 (extension): the prefetcher championship. Races every
 * self-contained engine in the repository — TCP-8K, DBCP-2M, stride,
 * stream, address-Markov, DCPT, GHB PC/DC, and delta-Markov — across
 * the whole 26-workload suite in one ledger-instrumented batch, then
 * ranks them with the shared leaderboard scoring
 * (score = coverage x accuracy x (1 - pollution), storage bits as the
 * cost axis; see src/obs/leaderboard.hh).
 *
 * The JSON report additionally carries a "championship" block with
 * one record per (workload, engine) race so `tcpreport leaderboard`
 * can re-rank or re-slice the tournament without re-simulating.
 */

#include <iostream>

#include "bench_common.hh"
#include "obs/leaderboard.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 16: the prefetcher championship", opt);

    const std::vector<std::string> engines = {
        "tcp8k", "dbcp2m", "stride", "stream",
        "markov", "dcpt",  "ghb",    "dmarkov",
    };

    // One base ("none") run plus one ledger-instrumented run per
    // engine, per workload; the batch returns submission order.
    const std::size_t stride_len = engines.size() + 1;
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads) {
        specs.push_back({.workload = name,
                         .instructions = opt.instructions,
                         .seed = opt.seed});
        for (const std::string &engine : engines) {
            RunSpec spec{.workload = name,
                         .engine = engine,
                         .instructions = opt.instructions,
                         .seed = opt.seed};
            spec.ledger = true;
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);

    std::vector<ChampionshipRun> runs;
    runs.reserve(opt.workloads.size() * engines.size());
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &base = results[w * stride_len];
        for (std::size_t e = 0; e < engines.size(); ++e) {
            const RunResult &r = results[w * stride_len + 1 + e];
            ChampionshipRun run;
            run.workload = opt.workloads[w];
            run.wl_class = workloadClass(run.workload);
            run.engine = engines[e];
            run.ipc = r.ipc();
            run.base_ipc = base.ipc();
            run.storage_bits = r.pf_storage_bits;
            run.original_l2 = base.original_l2;
            run.prefetched_original = r.prefetched_original;
            // Score from the ledger's retired outcomes, not the raw
            // hierarchy counters: the ledger partitions every issued
            // prefetch into exactly one outcome, which is what makes
            // accuracy and pollution comparable across engines.
            tcp_assert(!r.ledger.isNull(),
                       "championship run lost its ledger");
            run.pf_issued = r.ledger.at("issued").asUint();
            run.pf_useful = r.ledger.at("useful").asUint();
            run.pf_late = r.ledger.at("late").asUint();
            run.pf_pollution = r.ledger.at("pollution").asUint();
            runs.push_back(std::move(run));
        }
    }

    const TextTable winners = championshipWinnersTable(runs);
    const TextTable overall = leaderboardTable(runs, "");
    const TextTable board_int = leaderboardTable(runs, "int");
    const TextTable board_fp = leaderboardTable(runs, "fp");
    std::cout << winners.render() << "\n"
              << overall.render() << "\n"
              << board_int.render() << "\n"
              << board_fp.render();

    Json championship = Json::object();
    {
        Json names = Json::array();
        for (const std::string &engine : engines)
            names.push(engine);
        championship["engines"] = std::move(names);
    }
    {
        Json arr = Json::array();
        for (const ChampionshipRun &run : runs)
            arr.push(championshipRunJson(run));
        championship["runs"] = std::move(arr);
    }
    bench::writeJsonReport(opt, "fig16_championship",
                           {&winners, &overall, &board_int, &board_fp},
                           "championship", std::move(championship));
    return 0;
}
