/**
 * @file
 * Replacement-policy ablation: the paper assumes LRU in both cache
 * levels (Table 1). This bench swaps the L2 policy for tree-PLRU
 * (what hardware actually builds) and random, with and without
 * TCP-8K, to show the conclusions do not hinge on ideal LRU — and to
 * quantify how much prefetching masks replacement-policy quality
 * (a prefetched re-fetch is cheap, so policy losses shrink).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace tcp;

const char *
policyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU: return "LRU (paper)";
      case ReplPolicy::TreePLRU: return "tree-PLRU";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("L2 replacement-policy ablation", opt);

    TextTable table("L2 replacement policy: geomean IPC and TCP-8K "
                    "improvement");
    table.setHeader({"policy", "base IPC", "TCP-8K IPC",
                     "improvement"});
    for (ReplPolicy policy : {ReplPolicy::LRU, ReplPolicy::TreePLRU,
                              ReplPolicy::Random}) {
        MachineConfig cfg;
        cfg.l2.repl = policy;
        std::vector<double> base_ipcs, tcp_ipcs, ratios;
        for (const std::string &name : opt.workloads) {
            const RunResult base = runNamed(name, "none",
                                            opt.instructions, cfg,
                                            opt.seed);
            const RunResult r = runNamed(name, "tcp8k",
                                         opt.instructions, cfg,
                                         opt.seed);
            base_ipcs.push_back(base.ipc());
            tcp_ipcs.push_back(r.ipc());
            ratios.push_back(r.ipc() / base.ipc());
        }
        table.addRow({policyName(policy),
                      formatDouble(geomean(base_ipcs), 3),
                      formatDouble(geomean(tcp_ipcs), 3),
                      formatPercent(geomean(ratios) - 1.0, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "ablation_replacement", {&table});
    return 0;
}
