/**
 * @file
 * Replacement-policy ablation: the paper assumes LRU in both cache
 * levels (Table 1). This bench swaps the L2 policy for tree-PLRU
 * (what hardware actually builds) and random, with and without
 * TCP-8K, to show the conclusions do not hinge on ideal LRU — and to
 * quantify how much prefetching masks replacement-policy quality
 * (a prefetched re-fetch is cheap, so policy losses shrink).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace tcp;

const char *
policyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU: return "LRU (paper)";
      case ReplPolicy::TreePLRU: return "tree-PLRU";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("L2 replacement-policy ablation", opt);

    TextTable table("L2 replacement policy: geomean IPC and TCP-8K "
                    "improvement");
    table.setHeader({"policy", "base IPC", "TCP-8K IPC",
                     "improvement"});
    const ReplPolicy policies[] = {ReplPolicy::LRU,
                                   ReplPolicy::TreePLRU,
                                   ReplPolicy::Random};
    // Whole figure as one batch: per policy, (base, tcp8k) pairs in
    // workload order.
    std::vector<RunSpec> specs;
    for (ReplPolicy policy : policies) {
        MachineConfig cfg;
        cfg.l2.repl = policy;
        for (const std::string &name : opt.workloads) {
            specs.push_back({.workload = name,
                             .instructions = opt.instructions,
                             .machine = cfg,
                             .seed = opt.seed});
            specs.push_back({.workload = name,
                             .engine = "tcp8k",
                             .instructions = opt.instructions,
                             .machine = cfg,
                             .seed = opt.seed});
        }
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);

    std::size_t i = 0;
    for (ReplPolicy policy : policies) {
        std::vector<double> base_ipcs, tcp_ipcs, ratios;
        for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
            const RunResult &base = results[i++];
            const RunResult &r = results[i++];
            base_ipcs.push_back(base.ipc());
            tcp_ipcs.push_back(r.ipc());
            ratios.push_back(r.ipc() / base.ipc());
        }
        table.addRow({policyName(policy),
                      formatDouble(geomean(base_ipcs), 3),
                      formatDouble(geomean(tcp_ipcs), 3),
                      formatPercent(geomean(ratios) - 1.0, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "ablation_replacement", {&table});
    return 0;
}
