/**
 * @file
 * Figure 12: classification of L2 accesses under TCP-8K and TCP-8M,
 * normalised to the number of original (demand) L2 accesses:
 *   - "prefetched original": originals served by prefetched data,
 *   - "non-prefetched original": originals the prefetcher missed,
 *   - "prefetched extra": prefetch fills never used by a demand.
 * An ideal prefetcher scores 100% / 0% / 0%.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

tcp::TextTable
breakdownTable(const tcp::bench::SuiteOptions &opt,
               const std::string &engine)
{
    using namespace tcp;
    TextTable table("Fig 12: L2 access breakdown, " + engine +
                    " (% of original L2 accesses)");
    table.setHeader({"workload", "prefetched orig",
                     "non-prefetched orig", "prefetched extra"});
    for (const std::string &name : opt.workloads) {
        const RunResult r = runNamed(name, engine, opt.instructions,
                                     MachineConfig{}, opt.seed);
        const double denom =
            r.original_l2 ? static_cast<double>(r.original_l2) : 1.0;
        table.addRow({
            name,
            formatPercent(r.prefetched_original / denom, 1),
            formatPercent(r.nonprefetched_original / denom, 1),
            formatPercent(r.prefetchedExtra() / denom, 1),
        });
    }
    std::cout << table.render() << "\n";
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 12: L2 access classification", opt);

    const TextTable k8 = breakdownTable(opt, "tcp8k");
    const TextTable m8 = breakdownTable(opt, "tcp8m");
    bench::writeJsonReport(opt, "fig12_l2_breakdown", {&k8, &m8});
    return 0;
}
