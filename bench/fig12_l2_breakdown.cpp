/**
 * @file
 * Figure 12: classification of L2 accesses under TCP-8K and TCP-8M,
 * normalised to the number of original (demand) L2 accesses:
 *   - "prefetched original": originals served by prefetched data,
 *   - "non-prefetched original": originals the prefetcher missed,
 *   - "prefetched extra": prefetch fills never used by a demand.
 * An ideal prefetcher scores 100% / 0% / 0%.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

/** Render one engine's rows from its slice of the batch results. */
tcp::TextTable
breakdownTable(const tcp::bench::SuiteOptions &opt,
               const std::string &engine,
               const std::vector<tcp::RunResult> &results,
               std::size_t first)
{
    using namespace tcp;
    TextTable table("Fig 12: L2 access breakdown, " + engine +
                    " (% of original L2 accesses)");
    table.setHeader({"workload", "prefetched orig",
                     "non-prefetched orig", "prefetched extra"});
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &r = results[first + w];
        const double denom =
            r.original_l2 ? static_cast<double>(r.original_l2) : 1.0;
        table.addRow({
            opt.workloads[w],
            formatPercent(r.prefetched_original / denom, 1),
            formatPercent(r.nonprefetched_original / denom, 1),
            formatPercent(r.prefetchedExtra() / denom, 1),
        });
    }
    std::cout << table.render() << "\n";
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 12: L2 access classification", opt);

    // Both engines' matrices in one batch: tcp8k rows first, then
    // tcp8m.
    std::vector<RunSpec> specs;
    for (const char *engine : {"tcp8k", "tcp8m"})
        for (const std::string &name : opt.workloads)
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .seed = opt.seed});
    const std::vector<RunResult> results = bench::runBatch(opt, specs);

    const TextTable k8 = breakdownTable(opt, "tcp8k", results, 0);
    const TextTable m8 =
        breakdownTable(opt, "tcp8m", results, opt.workloads.size());
    bench::writeJsonReport(opt, "fig12_l2_breakdown", {&k8, &m8});
    return 0;
}
