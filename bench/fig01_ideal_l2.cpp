/**
 * @file
 * Figure 1: potential IPC improvement with an ideal L2 data cache
 * (every L2 access hits), per benchmark. This bounds what any
 * L2-targeted prefetcher can achieve and fixes the left-to-right
 * benchmark order used by all later figures.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 1: IPC improvement with ideal L2", opt);

    TextTable table("Fig 1: potential IPC improvement with ideal L2");
    table.setHeader({"workload", "base IPC", "ideal-L2 IPC",
                     "improvement"});
    MachineConfig ideal;
    ideal.ideal_l2 = true;
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads) {
        specs.push_back({.workload = name,
                         .instructions = opt.instructions,
                         .seed = opt.seed});
        specs.push_back({.workload = name,
                         .instructions = opt.instructions,
                         .machine = ideal,
                         .seed = opt.seed});
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);
    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const RunResult &base = results[2 * i];
        const RunResult &best = results[2 * i + 1];
        table.addRow({opt.workloads[i], formatDouble(base.ipc(), 3),
                      formatDouble(best.ipc(), 3),
                      formatPercent(ipcImprovement(best, base), 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig01_ideal_l2", {&table});
    return 0;
}
