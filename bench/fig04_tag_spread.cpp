/**
 * @file
 * Figure 4: average number of cache sets each tag appears in (top,
 * spatial locality) and average number of times a tag appears within
 * a single set (bottom, temporal locality).
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 4: tag spread across sets", opt);

    TextTable table("Fig 4: per-tag set spread (max 1024 sets)");
    table.setHeader({"workload", "sets/tag", "appearances/(tag,set)"});
    const auto stats = bench::mapWorkloads<TagStatsResult>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return an.tagStats();
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const TagStatsResult &t = stats[w];
        table.addRow({opt.workloads[w],
                      formatDouble(t.mean_sets_per_tag, 1),
                      formatDouble(t.mean_appearances_per_tag_set, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig04_tag_spread", {&table});
    return 0;
}
