/**
 * @file
 * Figure 6: number of unique three-tag sequences (top) and average
 * number of times each sequence re-appears (bottom) in the L1-D miss
 * stream. Highly repetitive sequences are what a history-based
 * predictor exploits.
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 6: sequence recurrence", opt);

    TextTable table("Fig 6: three-tag sequence recurrence");
    table.setHeader({"workload", "unique seqs", "appearances/seq"});
    const auto stats = bench::mapWorkloads<SeqStatsResult>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return an.seqStats();
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const SeqStatsResult &s = stats[w];
        table.addRow({opt.workloads[w], std::to_string(s.unique_seqs),
                      formatDouble(s.mean_appearances_per_seq, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig06_seq_recurrence", {&table});
    return 0;
}
