/**
 * @file
 * Figure 7: average number of sets each three-tag sequence appears
 * in (top) and average number of times a sequence appears within a
 * single set (bottom). Cross-set sequence sharing is the paper's key
 * argument for a shared PHT (TCP-8K).
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 7: sequence spread across sets", opt);

    TextTable table("Fig 7: per-sequence set spread (max 1024 sets)");
    table.setHeader({"workload", "sets/seq", "appearances/(seq,set)"});
    const auto stats = bench::mapWorkloads<SeqStatsResult>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return an.seqStats();
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const SeqStatsResult &s = stats[w];
        table.addRow({opt.workloads[w],
                      formatDouble(s.mean_sets_per_seq, 1),
                      formatDouble(s.mean_appearances_per_seq_set, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig07_seq_spread", {&table});
    return 0;
}
