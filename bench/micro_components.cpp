/**
 * @file
 * google-benchmark microbenchmarks of the core data structures: THT
 * push, PHT update/lookup, TCP end-to-end miss handling, cache model
 * access, and bus reservation. These establish that the simulator's
 * hot paths are cheap enough for laptop-scale sweeps and guard
 * against structural regressions.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "check/diff.hh"
#include "core/tcp.hh"
#include "harness/batch.hh"
#include "harness/multisim.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "obs/causal.hh"
#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "prefetch/dbcp.hh"
#include "sim/trace_sink.hh"
#include "trace/arena.hh"
#include "trace/trace_file.hh"
#include "trace/workloads.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace {

using namespace tcp;

void
BM_ThtPush(benchmark::State &state)
{
    TagHistoryTable tht(1024, 2);
    Rng rng(7);
    std::uint64_t i = 0;
    for (auto _ : state) {
        tht.push(i++ & 1023, rng.next() & 0xffff);
        benchmark::DoNotOptimize(tht.full(i & 1023));
    }
}
BENCHMARK(BM_ThtPush);

void
BM_PhtUpdateLookup(benchmark::State &state)
{
    PatternHistoryTable pht(PhtConfig::tcp8k());
    Rng rng(7);
    Tag seq[2] = {1, 2};
    for (auto _ : state) {
        seq[0] = rng.next() & 0xff;
        seq[1] = rng.next() & 0xff;
        const SetIndex idx = rng.next() & 1023;
        pht.update(seq, idx, seq[1] + 1);
        benchmark::DoNotOptimize(pht.lookup(seq, idx));
    }
}
BENCHMARK(BM_PhtUpdateLookup);

void
BM_TcpObserveMiss(benchmark::State &state)
{
    TagCorrelatingPrefetcher tcp_pf(TcpConfig::tcp8k());
    std::vector<PrefetchRequest> out;
    Rng rng(7);
    Addr addr = 0x100000000ULL;
    for (auto _ : state) {
        addr += 32 * (1 + (rng.next() & 3));
        out.clear();
        tcp_pf.observeMiss(
            AccessContext{addr, 0x400000, 0, false, AccessType::Read},
            out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_TcpObserveMiss);

void
BM_DbcpObserveMiss(benchmark::State &state)
{
    DbcpPrefetcher dbcp;
    std::vector<PrefetchRequest> out;
    Rng rng(7);
    Addr addr = 0x100000000ULL;
    for (auto _ : state) {
        addr += 32 * (1 + (rng.next() & 3));
        out.clear();
        dbcp.observeMiss(
            AccessContext{addr, 0x400000, 0, false, AccessType::Read},
            out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_DbcpObserveMiss);

void
BM_CacheAccessHit(benchmark::State &state)
{
    CacheModel cache(CacheConfig{"bench", 32 * 1024, 1, 32, 1, 64});
    for (Addr a = 0; a < 32 * 1024; a += 32)
        cache.fill(a, 0);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 1023) * 32;
        benchmark::DoNotOptimize(cache.access(a, ++now));
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_TraceHookDisabled(benchmark::State &state)
{
    // The observability contract: with no sink installed, a trace
    // hook is a pointer load and a not-taken branch. This guards the
    // instrumented hot paths (observeMiss, dataAccess) against the
    // hooks ever growing a hidden cost.
    Cycle c = 0;
    for (auto _ : state) {
        traceEvent("bench_event", "bench", ++c, 0x1000);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_TraceHookDisabled);

void
BM_TraceHookEnabled(benchmark::State &state)
{
    TraceSink sink;
    ScopedTraceSink installed(&sink);
    Cycle c = 0;
    for (auto _ : state) {
        traceEvent("bench_event", "bench", ++c, 0x1000);
        benchmark::DoNotOptimize(c);
        if (sink.eventCount() >= (1u << 16))
            sink.clear(); // bound the buffer across iterations
    }
}
BENCHMARK(BM_TraceHookEnabled);

void
BM_LedgerHookDisabled(benchmark::State &state)
{
    // Same contract as the trace hooks: with no ledger attached, the
    // lifecycle hooks on the demand paths are one null test each.
    PrefetchLedger *ledger = nullptr;
    Cycle c = 0;
    for (auto _ : state) {
        ledgerL1Miss(ledger, 0x1000, ++c);
        ledgerDemandHit(ledger, 0x1000, c);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_LedgerHookDisabled);

void
BM_LedgerHookEnabled(benchmark::State &state)
{
    PrefetchLedger ledger;
    Cycle c = 0;
    Addr a = 0;
    for (auto _ : state) {
        // The common enabled-path pair on a demand miss: advance the
        // miss sequence + shadow probe, then the live-map lookup.
        ledgerL1Miss(&ledger, a, ++c);
        ledgerDemandHit(&ledger, a, c);
        a = (a + 64) & 0xfffff;
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_LedgerHookEnabled);

void
BM_CacheFillListenerAttached(benchmark::State &state)
{
    // Cache fills with the ledger listening: every fill that evicts
    // a valid line makes one virtual call. Compare with
    // BM_CacheAccessHit for the no-listener baseline.
    CacheConfig config;
    config.name = "bench_l2";
    config.size_bytes = 32 * 1024;
    config.block_bytes = 64;
    config.assoc = 2;
    CacheModel cache(config);
    PrefetchLedger ledger;
    cache.setListener(&ledger, kLedgerCacheL2);
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        if (!cache.probe(a))
            cache.fill(a, ++now);
        a = (a + 64) & 0xfffff; // wraps: steady-state evictions
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_CacheFillListenerAttached);

void
BM_HierarchyAccessNoCheck(benchmark::State &state)
{
    // The differential-checker contract: with no hook attached, each
    // instrumented point on the demand path is one pointer test and a
    // not-taken branch. Compare with BM_HierarchyAccessDiffCheck for
    // the price of full lockstep verification.
    MemoryHierarchy mem(MachineConfig{});
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
}
BENCHMARK(BM_HierarchyAccessNoCheck);

void
BM_HierarchyAccessDiffCheck(benchmark::State &state)
{
    MemoryHierarchy mem(MachineConfig{});
    DiffChecker checker(mem);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
}
BENCHMARK(BM_HierarchyAccessDiffCheck);

void
BM_MetricsDisabled(benchmark::State &state)
{
    // The telemetry contract: with no SimMetrics attached, the
    // metrics hooks on the demand path are one pointer test and a
    // not-taken ([[unlikely]]) branch each — the same discipline as
    // the trace/ledger/checker hooks. Guarded in CI next to the
    // ledger rows.
    MemoryHierarchy mem(MachineConfig{});
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
}
BENCHMARK(BM_MetricsDisabled);

void
BM_MetricsEnabled(benchmark::State &state)
{
    // Enabled path: every L1-D miss records a latency histogram
    // observation and an MSHR occupancy sample into a per-thread
    // shard (two array increments plus min/max updates).
    MetricsRegistry registry;
    SimMetrics metrics(registry);
    MemoryHierarchy mem(MachineConfig{});
    mem.attachMetrics(&metrics);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
    mem.attachMetrics(nullptr);
}
BENCHMARK(BM_MetricsEnabled);

void
BM_CausalDisabled(benchmark::State &state)
{
    // The causal-tracer contract: detached, every attach point on
    // the miss path (engine begin/reason/probe hooks, hierarchy
    // issue hooks, ledger retire join) is one pointer test and a
    // not-taken [[unlikely]] branch. CI gates this row against
    // BM_MetricsDisabled-style drift (<=1% over the plain path).
    MemoryHierarchy mem(MachineConfig{});
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
}
BENCHMARK(BM_CausalDisabled);

void
BM_CausalEnabled(benchmark::State &state)
{
    // Attached path: every L1-D miss opens a packed SoA record
    // (trigger, THT transition, PHT probe, decision) and every
    // issued prefetch appends an event plus a ledger-id map entry
    // for the retirement join. Bounded capacity keeps the working
    // set flat over a long benchmark run.
    CausalTracer tracer(/*capacity=*/64 * 1024);
    MemoryHierarchy mem(MachineConfig{});
    mem.attachCausal(&tracer);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = (rng.next() & 2047) * 32;
        benchmark::DoNotOptimize(
            mem.dataAccess(a, AccessType::Read, 0x1000, ++now));
    }
    mem.attachCausal(nullptr);
}
BENCHMARK(BM_CausalEnabled);

void
BM_TcpObserveMissTraced(benchmark::State &state)
{
    // The full instrumented miss path with a live sink, for
    // comparison against BM_TcpObserveMiss (sink disabled).
    TraceSink sink;
    ScopedTraceSink installed(&sink);
    TagCorrelatingPrefetcher tcp_pf(TcpConfig::tcp8k());
    std::vector<PrefetchRequest> out;
    Rng rng(7);
    Addr addr = 0x100000000ULL;
    for (auto _ : state) {
        addr += 32 * (1 + (rng.next() & 3));
        out.clear();
        tcp_pf.observeMiss(
            AccessContext{addr, 0x400000, 0, false, AccessType::Read},
            out);
        benchmark::DoNotOptimize(out.size());
        if (sink.eventCount() >= (1u << 16))
            sink.clear();
    }
}
BENCHMARK(BM_TcpObserveMissTraced);

void
BM_BatchDispatchOverhead(benchmark::State &state)
{
    // Per-job overhead of BatchRunner dispatch (queueing, future
    // round-trip, result-slot write) with trivial job bodies. The
    // pool lives outside the timing loop, matching how the figure
    // drivers reuse one runner per batch. Budget: well under 50 us
    // per job, so dispatch cost is negligible against even the
    // smallest real simulation.
    BatchRunner runner(2);
    constexpr std::size_t kJobs = 64;
    for (auto _ : state) {
        const std::vector<std::uint64_t> out =
            runner.map<std::uint64_t>(kJobs, [](std::size_t i) {
                return static_cast<std::uint64_t>(i) * 2654435761u;
            });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kJobs));
}
BENCHMARK(BM_BatchDispatchOverhead)->UseRealTime();

// ---------------------------------------------------- trace ingestion

/** Ops in the shared ingestion-benchmark stream. */
constexpr std::uint64_t kIngestOps = 1 << 18;

const std::shared_ptr<const TraceArena> &
ingestArena()
{
    static const std::shared_ptr<const TraceArena> arena =
        TraceArena::fromWorkload("gzip", 1, kIngestOps);
    return arena;
}

/** A recorded copy of ingestArena(), deleted at process exit. */
const std::string &
ingestTracePath()
{
    static const std::string path = [] {
        std::string p = "bench_ingest.tcptrc";
        ingestArena()->writeTrace(p);
        return p;
    }();
    return path;
}

void
BM_TraceArenaFill(benchmark::State &state)
{
    // Arena replay throughput: the block decode every simulation job
    // pays when it pulls from a shared arena.
    const auto &arena = ingestArena();
    MicroOp block[256];
    std::uint64_t pos = 0;
    for (auto _ : state) {
        const std::size_t got = arena->fill(block, 256, pos);
        pos = got < 256 ? 0 : pos + got;
        benchmark::DoNotOptimize(block[0].addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 256));
}
BENCHMARK(BM_TraceArenaFill);

void
BM_MmapReplay(benchmark::State &state)
{
    // Whole-file ingestion through the zero-copy mapping, including
    // open/validate — the record-once -> sweep-many replay cost.
    const std::string &path = ingestTracePath();
    MicroOp block[4096];
    for (auto _ : state) {
        FileTraceSource src(path, TraceIo::Auto);
        std::uint64_t total = 0;
        while (const std::size_t got = src.fill(block, 4096))
            total += got;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kIngestOps));
}
BENCHMARK(BM_MmapReplay);

void
BM_BufferedReplay(benchmark::State &state)
{
    // The same ingestion through the stream fallback, for platforms
    // (or --io buffered runs) without mmap.
    const std::string &path = ingestTracePath();
    MicroOp block[4096];
    for (auto _ : state) {
        FileTraceSource src(path, TraceIo::Buffered);
        std::uint64_t total = 0;
        while (const std::size_t got = src.fill(block, 4096))
            total += got;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kIngestOps));
}
BENCHMARK(BM_BufferedReplay);

void
BM_SeedStyleReplay(benchmark::State &state)
{
    // The pre-arena ingestion loop: one 20-byte stream read per op
    // through the per-op virtual front end. Retained as the baseline
    // the mmap/block replay ratio in BENCH_pr5.json is quoted against.
    const std::string &path = ingestTracePath();
    for (auto _ : state) {
        std::ifstream in(path, std::ios::binary);
        in.seekg(16); // skip magic + count
        char rec[20];
        std::uint64_t total = 0;
        for (std::uint64_t i = 0; i < kIngestOps; ++i) {
            in.read(rec, sizeof(rec));
            MicroOp op;
            op.pc = 0;
            for (int b = 7; b >= 0; --b)
                op.pc = op.pc << 8 |
                        static_cast<unsigned char>(rec[b]);
            benchmark::DoNotOptimize(op.pc);
            ++total;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kIngestOps));
}
BENCHMARK(BM_SeedStyleReplay);

void
BM_PerOpFetch(benchmark::State &state)
{
    // The pre-block front end: one virtual next() per op, retained as
    // the baseline for BM_BlockPullFetch.
    ArenaTraceSource src(ingestArena());
    MicroOp op;
    for (auto _ : state) {
        if (!src.next(op))
            src.reset();
        benchmark::DoNotOptimize(op.addr);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerOpFetch);

void
BM_BlockPullFetch(benchmark::State &state)
{
    // The core's block-pull front end: one virtual fill() per 256
    // ops, then straight array reads — no per-op virtual call.
    ArenaTraceSource src(ingestArena());
    MicroOp block[256];
    for (auto _ : state) {
        std::size_t got = src.fill(block, 256);
        if (got < 256)
            src.reset();
        benchmark::DoNotOptimize(block[0].addr);
        benchmark::DoNotOptimize(got);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 256));
}
BENCHMARK(BM_BlockPullFetch);

// ------------------------------------------- config-parallel lanes

/** Ops per lane-benchmark run (plus auto warmup of half that). */
constexpr std::uint64_t kLaneOps = 1 << 16;

/** One shared arena for every lane-benchmark spec. */
const std::shared_ptr<const TraceArena> &
laneArena()
{
    static const std::shared_ptr<const TraceArena> arena =
        TraceArena::fromWorkload("gzip", 1, kLaneOps + kLaneOps / 2);
    return arena;
}

/**
 * K share-eligible TCP geometries over one workload pass — the
 * fig13-style sweep slice the lane engine coalesces.
 */
std::vector<RunSpec>
laneBenchSpecs(unsigned k)
{
    std::vector<RunSpec> specs;
    for (unsigned i = 0; i < k; ++i) {
        specs.push_back(
            {.workload = "gzip",
             .engine = "tcp:" +
                       std::to_string(2048ull << (i % 12)) + ":" +
                       std::to_string(i % 3),
             .instructions = kLaneOps,
             .seed = 1,
             .arena = laneArena()});
    }
    return specs;
}

void
BM_MultiSimLanes(benchmark::State &state)
{
    // K resident lanes on one arena cursor: each block is decoded
    // once and fed to every lane, share-eligible lanes reuse the
    // leader's THT transitions. Compare against the same K specs in
    // BM_MultiSimIndependent to see the coalescing benefit per lane.
    const unsigned k = static_cast<unsigned>(state.range(0));
    const std::vector<RunSpec> specs = laneBenchSpecs(k);
    LaneGroup group;
    for (std::size_t i = 0; i < specs.size(); ++i)
        group.lanes.push_back(i);
    for (auto _ : state) {
        const std::vector<RunResult> results =
            runLaneGroup(specs, group);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * k * specOpsNeeded(specs[0])));
}
BENCHMARK(BM_MultiSimLanes)->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_MultiSimLanesLockstep(benchmark::State &state)
{
    // The same group as BM_MultiSimLanes, stepped in lockstep over
    // lane-interleaved SIMD directories (LaneOptions::lockstep).
    // Bit-identical results; this measures only the kernel's
    // host-cache behaviour against the default lane-sequential sweep.
    const unsigned k = static_cast<unsigned>(state.range(0));
    const std::vector<RunSpec> specs = laneBenchSpecs(k);
    LaneGroup group;
    for (std::size_t i = 0; i < specs.size(); ++i)
        group.lanes.push_back(i);
    const LaneOptions opt{.lockstep = true};
    for (auto _ : state) {
        const std::vector<RunResult> results =
            runLaneGroup(specs, group, nullptr, opt);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * k * specOpsNeeded(specs[0])));
}
BENCHMARK(BM_MultiSimLanesLockstep)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/**
 * The raw tag-scan kernels at every vector tier, over the two shapes
 * the simulator uses them in: a packed per-set key column (findTag,
 * "across ways" — the solo CacheModel::findWay scan) and a
 * lane-interleaved ways-by-lanes block (matchMask, "across lanes" —
 * the LaneDirectory scan serving a whole group). Arg0 is the tier
 * (0 scalar, 1 SSE2, 2 AVX2), Arg1 the keys per scan.
 */
void
BM_SimdSetScan(benchmark::State &state)
{
    const auto tier = static_cast<SimdTier>(state.range(0));
    const unsigned n = static_cast<unsigned>(state.range(1));
    if (!simdTierAvailable(tier)) {
        state.SkipWithError("tier unavailable on this host");
        return;
    }
    // A pool of key rows with the needle planted at rotating
    // positions (and sometimes absent), so the scan sees hit-at-0,
    // hit-at-tail, and miss patterns instead of one branch-predicted
    // shape.
    constexpr unsigned kRows = 64;
    Rng rng(11);
    std::vector<Tag> keys(kRows * n);
    for (Tag &key : keys)
        key = rng.next();
    const Tag needle = 0x7a57ed;
    for (unsigned r = 0; r + 1 < kRows; ++r)
        keys[r * n + (r % n)] = needle;
    unsigned row = 0;
    const bool across_lanes = n > 16; // ways*lanes block vs way column
    for (auto _ : state) {
        const Tag *base = &keys[row * n];
        row = (row + 1) % kRows;
        if (across_lanes) {
            std::uint64_t mask;
            switch (tier) {
              case SimdTier::Avx2:
                mask = matchMaskAvx2(base, n, needle);
                break;
              case SimdTier::Sse2:
                mask = matchMaskSse2(base, n, needle);
                break;
              default:
                mask = matchMaskScalar(base, n, needle);
                break;
            }
            benchmark::DoNotOptimize(mask);
        } else {
            unsigned way;
            switch (tier) {
              case SimdTier::Avx2:
                way = findTagAvx2(base, n, needle);
                break;
              case SimdTier::Sse2:
                way = findTagSse2(base, n, needle);
                break;
              default:
                way = findTagScalar(base, n, needle);
                break;
            }
            benchmark::DoNotOptimize(way);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SimdSetScan)
    ->ArgNames({"tier", "keys"})
    // Across ways: the 4-way L2 column and a hypothetical 8-way one.
    ->Args({0, 4})->Args({1, 4})->Args({2, 4})
    ->Args({0, 8})->Args({1, 8})->Args({2, 8})
    // Across lanes: 4-way x 8-lane and 4-way x 16-lane blocks.
    ->Args({0, 32})->Args({1, 32})->Args({2, 32})
    ->Args({0, 64})->Args({1, 64})->Args({2, 64});

void
BM_MultiSimIndependent(benchmark::State &state)
{
    // The uncoalesced baseline: the same K specs as sequential
    // runSpec() calls, each re-decoding the shared arena and running
    // its own THT.
    const unsigned k = static_cast<unsigned>(state.range(0));
    const std::vector<RunSpec> specs = laneBenchSpecs(k);
    for (auto _ : state) {
        for (const RunSpec &spec : specs) {
            const RunResult r = runSpec(spec);
            benchmark::DoNotOptimize(r.core.cycles);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * k * specOpsNeeded(specs[0])));
}
BENCHMARK(BM_MultiSimIndependent)->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_BusRequest(benchmark::State &state)
{
    Bus bus(BusConfig{"bench", 32});
    Cycle now = 0;
    Rng rng(7);
    for (auto _ : state) {
        // Jittered timestamps exercise the backfill path at ~50%
        // utilisation (one 1-cycle transfer every ~2 cycles).
        now += 1 + rng.next() % 3;
        benchmark::DoNotOptimize(bus.request(now, 32));
    }
}
BENCHMARK(BM_BusRequest);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::remove(ingestTracePath().c_str());
    return 0;
}
