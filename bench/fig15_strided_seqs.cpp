/**
 * @file
 * Figure 15: percentage of strided three-tag sequences (constant
 * nonzero tag stride) in the L1-D miss stream — the special pattern
 * Section 6 proposes exploiting with more space-efficient encodings.
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 15: strided three-tag sequences", opt);

    TextTable table("Fig 15: strided sequence fraction");
    table.setHeader({"workload", "sequences", "strided",
                     "strided %", "constant (stride 0)"});
    const auto stats = bench::mapWorkloads<SeqStatsResult>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return an.seqStats();
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const SeqStatsResult &s = stats[w];
        table.addRow({opt.workloads[w],
                      std::to_string(s.sequences_observed),
                      std::to_string(s.strided_sequences),
                      formatPercent(s.strided_fraction, 2),
                      std::to_string(s.constant_sequences)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig15_strided_seqs", {&table});
    return 0;
}
