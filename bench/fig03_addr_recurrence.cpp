/**
 * @file
 * Figure 3: number of unique (block) addresses and average number of
 * times each address re-appears in the L1-D miss stream — the
 * address-based counterpart of Figure 2, showing why address tables
 * must be orders of magnitude larger than tag tables.
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 3: unique addresses and recurrence", opt);

    TextTable table("Fig 3: address recurrence in the L1-D miss stream");
    table.setHeader({"workload", "unique addrs", "appearances/addr",
                     "addrs/tag"});
    using Row = std::pair<AddrStatsResult, TagStatsResult>;
    const auto stats = bench::mapWorkloads<Row>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return Row{an.addrStats(), an.tagStats()};
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const auto &[a, t] = stats[w];
        const double ratio =
            t.unique_tags ? static_cast<double>(a.unique_addrs) /
                                static_cast<double>(t.unique_tags)
                          : 0.0;
        table.addRow({opt.workloads[w],
                      std::to_string(a.unique_addrs),
                      formatDouble(a.mean_appearances_per_addr, 1),
                      formatDouble(ratio, 1)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig03_addr_recurrence", {&table});
    return 0;
}
