/**
 * @file
 * Machine-parameter sensitivity of the headline result: how the
 * TCP-8K improvement scales with main-memory latency, L2 capacity,
 * and memory-bus width. These sweeps bound how strongly the paper's
 * conclusions depend on its Table 1 operating point (2003-era 70
 * cycles, 1 MB L2) — the latency sweep in particular shows the gains
 * *grow* as the processor/memory gap widens, the paper's motivating
 * trend.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace tcp;

double
improvementAt(const bench::SuiteOptions &opt, const MachineConfig &cfg)
{
    std::vector<double> ratios;
    for (const std::string &name : opt.workloads) {
        const RunResult base =
            runNamed(name, "none", opt.instructions, cfg, opt.seed);
        const RunResult r =
            runNamed(name, "tcp8k", opt.instructions, cfg, opt.seed);
        ratios.push_back(r.ipc() / base.ipc());
    }
    return geomean(ratios) - 1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("Machine sensitivity of the TCP-8K gain", opt);

    TextTable lat("Sensitivity 1: main-memory latency");
    lat.setHeader({"memory latency", "TCP-8K improvement"});
    for (Cycle l : {35u, 70u, 140u, 280u}) {
        MachineConfig cfg;
        cfg.memory_latency = l;
        lat.addRow({std::to_string(l) + " cycles" +
                        (l == 70 ? " (paper)" : ""),
                    formatPercent(improvementAt(opt, cfg), 1)});
    }
    std::cout << lat.render() << "\n";

    TextTable l2("Sensitivity 2: L2 capacity");
    l2.setHeader({"L2 size", "TCP-8K improvement"});
    for (std::uint64_t mb : {1u, 2u, 4u}) {
        MachineConfig cfg;
        cfg.l2.size_bytes = mb * 1024 * 1024;
        l2.addRow({std::to_string(mb) + "MB" +
                       (mb == 1 ? " (paper)" : ""),
                   formatPercent(improvementAt(opt, cfg), 1)});
    }
    std::cout << l2.render() << "\n";

    TextTable bus("Sensitivity 3: memory-bus width");
    bus.setHeader({"bytes/cycle", "TCP-8K improvement"});
    for (unsigned w : {16u, 32u, 64u}) {
        MachineConfig cfg;
        cfg.mem_bus.bytes_per_cycle = w;
        bus.addRow({std::to_string(w) + (w == 64 ? " (default)" : ""),
                    formatPercent(improvementAt(opt, cfg), 1)});
    }
    std::cout << bus.render();
    bench::writeJsonReport(opt, "ablation_sensitivity",
                           {&lat, &l2, &bus});
    return 0;
}
