/**
 * @file
 * Machine-parameter sensitivity of the headline result: how the
 * TCP-8K improvement scales with main-memory latency, L2 capacity,
 * and memory-bus width. These sweeps bound how strongly the paper's
 * conclusions depend on its Table 1 operating point (2003-era 70
 * cycles, 1 MB L2) — the latency sweep in particular shows the gains
 * *grow* as the processor/memory gap widens, the paper's motivating
 * trend.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace tcp;

/**
 * TCP-8K improvement for each machine variant, the whole sweep run
 * as one batch: per variant, (base, tcp8k) pairs in workload order.
 */
std::vector<double>
improvementsAt(const bench::SuiteOptions &opt,
               const std::vector<MachineConfig> &cfgs)
{
    std::vector<RunSpec> specs;
    for (const MachineConfig &cfg : cfgs) {
        for (const std::string &name : opt.workloads) {
            specs.push_back({.workload = name,
                             .instructions = opt.instructions,
                             .machine = cfg,
                             .seed = opt.seed});
            specs.push_back({.workload = name,
                             .engine = "tcp8k",
                             .instructions = opt.instructions,
                             .machine = cfg,
                             .seed = opt.seed});
        }
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);
    std::vector<double> improvements;
    std::size_t i = 0;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        std::vector<double> ratios;
        for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
            const RunResult &base = results[i++];
            const RunResult &r = results[i++];
            ratios.push_back(r.ipc() / base.ipc());
        }
        improvements.push_back(geomean(ratios) - 1.0);
    }
    return improvements;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("Machine sensitivity of the TCP-8K gain", opt);

    TextTable lat("Sensitivity 1: main-memory latency");
    lat.setHeader({"memory latency", "TCP-8K improvement"});
    {
        std::vector<MachineConfig> cfgs;
        for (Cycle l : {35u, 70u, 140u, 280u}) {
            MachineConfig cfg;
            cfg.memory_latency = l;
            cfgs.push_back(cfg);
        }
        const std::vector<double> imp = improvementsAt(opt, cfgs);
        std::size_t i = 0;
        for (Cycle l : {35u, 70u, 140u, 280u})
            lat.addRow({std::to_string(l) + " cycles" +
                            (l == 70 ? " (paper)" : ""),
                        formatPercent(imp[i++], 1)});
    }
    std::cout << lat.render() << "\n";

    TextTable l2("Sensitivity 2: L2 capacity");
    l2.setHeader({"L2 size", "TCP-8K improvement"});
    {
        std::vector<MachineConfig> cfgs;
        for (std::uint64_t mb : {1u, 2u, 4u}) {
            MachineConfig cfg;
            cfg.l2.size_bytes = mb * 1024 * 1024;
            cfgs.push_back(cfg);
        }
        const std::vector<double> imp = improvementsAt(opt, cfgs);
        std::size_t i = 0;
        for (std::uint64_t mb : {1u, 2u, 4u})
            l2.addRow({std::to_string(mb) + "MB" +
                           (mb == 1 ? " (paper)" : ""),
                       formatPercent(imp[i++], 1)});
    }
    std::cout << l2.render() << "\n";

    TextTable bus("Sensitivity 3: memory-bus width");
    bus.setHeader({"bytes/cycle", "TCP-8K improvement"});
    {
        std::vector<MachineConfig> cfgs;
        for (unsigned w : {16u, 32u, 64u}) {
            MachineConfig cfg;
            cfg.mem_bus.bytes_per_cycle = w;
            cfgs.push_back(cfg);
        }
        const std::vector<double> imp = improvementsAt(opt, cfgs);
        std::size_t i = 0;
        for (unsigned w : {16u, 32u, 64u})
            bus.addRow({std::to_string(w) +
                            (w == 64 ? " (default)" : ""),
                        formatPercent(imp[i++], 1)});
    }
    std::cout << bus.render();
    bench::writeJsonReport(opt, "ablation_sensitivity",
                           {&lat, &l2, &bus});
    return 0;
}
