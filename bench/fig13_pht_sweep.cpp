/**
 * @file
 * Figure 13: sensitivity of TCP to PHT configuration.
 *   Top: mean IPC with PHT sizes 2 KB – 8 MB, for the shared scheme
 *        (0 miss-index bits) and the private scheme (full miss
 *        index, clamped when the PHT is too small to take all 10
 *        bits).
 *   Bottom: mean IPC of an 8 KB PHT using 0–3 miss-index bits.
 *
 * The default workload subset covers the suite's behaviour classes
 * (strided, pointer-chasing, mixed, compute-bound); pass
 * --workloads=all for the full suite.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/pht.hh"
#include "util/bits.hh"

namespace {

/** Engine spec string for one TCP geometry. */
std::string
engineOf(std::uint64_t pht_bytes, unsigned index_bits)
{
    return "tcp:" + std::to_string(pht_bytes) + ":" +
           std::to_string(index_bits);
}

/**
 * Geometric-mean IPC of each engine across the workloads: the whole
 * (engine x workload) matrix runs as one batch, then the means are
 * reduced per engine slice.
 */
std::vector<double>
meanIpcs(const tcp::bench::SuiteOptions &opt,
         const std::vector<std::string> &engines)
{
    using namespace tcp;
    // One hierarchy config for the whole matrix: the sweep varies
    // only the predictor, so every (workload, seed) slice coalesces
    // into a single lane-group trace pass.
    const MachineConfig &machine = opt.machine;
    std::vector<RunSpec> specs;
    for (const std::string &engine : engines)
        for (const std::string &name : opt.workloads)
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .machine = machine,
                             .seed = opt.seed});
    const std::vector<RunResult> results = bench::runBatch(opt, specs);
    std::vector<double> means;
    for (std::size_t e = 0; e < engines.size(); ++e) {
        std::vector<double> ipcs;
        for (std::size_t w = 0; w < opt.workloads.size(); ++w)
            ipcs.push_back(
                results[e * opt.workloads.size() + w].ipc());
        means.push_back(geomean(ipcs));
    }
    return means;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "mesa",  "bzip2", "facerec",
                         "gcc",  "applu", "art",   "swim",
                         "ammp", "mcf"};
    }
    bench::printHeader("Figure 13: PHT size and indexing sweep", opt);

    // --- Top: PHT size sweep, shared (n=0) vs private (full index).
    TextTable top("Fig 13 top: mean IPC vs PHT size");
    top.setHeader({"PHT size", "shared (n=0)", "private (full index)",
                   "n used"});
    std::vector<std::uint64_t> sizes;
    std::vector<unsigned> full_ns;
    std::vector<std::string> top_engines;
    for (std::uint64_t bytes = 2 * 1024; bytes <= 8 * 1024 * 1024;
         bytes *= 4) {
        // A PHT of `bytes` has bytes/4 entries in 8-way sets; the
        // private scheme wants all 10 miss-index bits but small
        // tables cannot spare them.
        const PhtConfig probe = PhtConfig::ofSize(bytes, 0);
        const unsigned set_bits =
            static_cast<unsigned>(floorLog2(probe.sets));
        const unsigned full_n = std::min(10u, set_bits);
        sizes.push_back(bytes);
        full_ns.push_back(full_n);
        top_engines.push_back(engineOf(bytes, 0));
        top_engines.push_back(engineOf(bytes, full_n));
    }
    const std::vector<double> top_means = meanIpcs(opt, top_engines);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        top.addRow({formatBytes(sizes[i]),
                    formatDouble(top_means[2 * i], 3),
                    formatDouble(top_means[2 * i + 1], 3),
                    std::to_string(full_ns[i])});
    }
    std::cout << top.render() << "\n";

    // --- Bottom: miss-index bits in an 8 KB PHT.
    TextTable bottom("Fig 13 bottom: mean IPC vs miss-index bits "
                     "(8KB PHT)");
    bottom.setHeader({"miss-index bits", "mean IPC"});
    std::vector<std::string> bottom_engines;
    for (unsigned n = 0; n <= 3; ++n)
        bottom_engines.push_back(engineOf(8 * 1024, n));
    const std::vector<double> bottom_means =
        meanIpcs(opt, bottom_engines);
    for (unsigned n = 0; n <= 3; ++n) {
        bottom.addRow({std::to_string(n),
                       formatDouble(bottom_means[n], 3)});
    }
    std::cout << bottom.render();
    bench::writeJsonReport(opt, "fig13_pht_sweep", {&top, &bottom});
    return 0;
}
