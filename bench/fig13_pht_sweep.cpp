/**
 * @file
 * Figure 13: sensitivity of TCP to PHT configuration.
 *   Top: mean IPC with PHT sizes 2 KB – 8 MB, for the shared scheme
 *        (0 miss-index bits) and the private scheme (full miss
 *        index, clamped when the PHT is too small to take all 10
 *        bits).
 *   Bottom: mean IPC of an 8 KB PHT using 0–3 miss-index bits.
 *
 * The default workload subset covers the suite's behaviour classes
 * (strided, pointer-chasing, mixed, compute-bound); pass
 * --workloads=all for the full suite.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/pht.hh"
#include "util/bits.hh"

namespace {

/** Geometric-mean IPC of one TCP geometry across the workloads. */
double
meanIpc(const tcp::bench::SuiteOptions &opt, std::uint64_t pht_bytes,
        unsigned index_bits)
{
    using namespace tcp;
    std::vector<double> ipcs;
    const std::string engine = "tcp:" + std::to_string(pht_bytes) +
                               ":" + std::to_string(index_bits);
    for (const std::string &name : opt.workloads) {
        const RunResult r = runNamed(name, engine, opt.instructions,
                                     MachineConfig{}, opt.seed);
        ipcs.push_back(r.ipc());
    }
    return geomean(ipcs);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "mesa",  "bzip2", "facerec",
                         "gcc",  "applu", "art",   "swim",
                         "ammp", "mcf"};
    }
    bench::printHeader("Figure 13: PHT size and indexing sweep", opt);

    // --- Top: PHT size sweep, shared (n=0) vs private (full index).
    TextTable top("Fig 13 top: mean IPC vs PHT size");
    top.setHeader({"PHT size", "shared (n=0)", "private (full index)",
                   "n used"});
    for (std::uint64_t bytes = 2 * 1024; bytes <= 8 * 1024 * 1024;
         bytes *= 4) {
        // A PHT of `bytes` has bytes/4 entries in 8-way sets; the
        // private scheme wants all 10 miss-index bits but small
        // tables cannot spare them.
        const PhtConfig probe = PhtConfig::ofSize(bytes, 0);
        const unsigned set_bits =
            static_cast<unsigned>(floorLog2(probe.sets));
        const unsigned full_n = std::min(10u, set_bits);
        top.addRow({formatBytes(bytes),
                    formatDouble(meanIpc(opt, bytes, 0), 3),
                    formatDouble(meanIpc(opt, bytes, full_n), 3),
                    std::to_string(full_n)});
    }
    std::cout << top.render() << "\n";

    // --- Bottom: miss-index bits in an 8 KB PHT.
    TextTable bottom("Fig 13 bottom: mean IPC vs miss-index bits "
                     "(8KB PHT)");
    bottom.setHeader({"miss-index bits", "mean IPC"});
    for (unsigned n = 0; n <= 3; ++n) {
        bottom.addRow({std::to_string(n),
                       formatDouble(meanIpc(opt, 8 * 1024, n), 3)});
    }
    std::cout << bottom.render();
    bench::writeJsonReport(opt, "fig13_pht_sweep", {&top, &bottom});
    return 0;
}
