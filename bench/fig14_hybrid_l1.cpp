/**
 * @file
 * Figure 14: prefetching into L2 only (TCP-8K) versus the hybrid
 * scheme (Hybrid-8K) that additionally promotes prefetched blocks
 * into L1 once a timekeeping dead-block predictor declares the
 * victim dead, over a dedicated prefetch bus.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 14: L2-only vs hybrid L1 prefetching",
                       opt);

    TextTable table("Fig 14: IPC improvement over no prefetching");
    table.setHeader({"workload", "TCP-8K", "Hybrid-8K",
                     "naive L1 (no gate)", "L1 promotions"});
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads)
        for (const char *engine :
             {"none", "tcp8k", "hybrid8k", "naive_l1_8k"})
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .seed = opt.seed});
    const std::vector<RunResult> results = bench::runBatch(opt, specs);

    std::vector<double> r_tcp, r_hybrid, r_naive;
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &base = results[4 * w];
        const RunResult &tcp8k = results[4 * w + 1];
        const RunResult &hybrid = results[4 * w + 2];
        const RunResult &naive = results[4 * w + 3];
        r_tcp.push_back(tcp8k.ipc() / base.ipc());
        r_hybrid.push_back(hybrid.ipc() / base.ipc());
        r_naive.push_back(naive.ipc() / base.ipc());
        table.addRow({opt.workloads[w],
                      formatPercent(ipcImprovement(tcp8k, base), 1),
                      formatPercent(ipcImprovement(hybrid, base), 1),
                      formatPercent(ipcImprovement(naive, base), 1),
                      std::to_string(hybrid.promotions_l1)});
    }
    table.addRow({"geomean", formatPercent(geomean(r_tcp) - 1.0, 1),
                  formatPercent(geomean(r_hybrid) - 1.0, 1),
                  formatPercent(geomean(r_naive) - 1.0, 1), "-"});
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig14_hybrid_l1", {&table});
    return 0;
}
