/**
 * @file
 * Table 1: the simulated machine configuration, plus the storage
 * budgets of every prefetcher configuration evaluated in the paper
 * (the TCP size formulas of Section 4).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/tcp.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    args.addFlag("json", "",
                 "also write the table as JSON to this path");
    args.parse(argc, argv);

    std::cout << "# Table 1: Configuration of Simulated Processor\n\n"
              << MachineConfig{}.describe() << "\n";

    TextTable table("Prefetcher storage budgets");
    table.setHeader({"engine", "tables", "storage"});
    const TcpConfig k8 = TcpConfig::tcp8k();
    const TcpConfig m8 = TcpConfig::tcp8m();
    table.addRow({"TCP-8K",
                  "THT 1024x2 tags + PHT 256-set 8-way (n=0)",
                  formatBytes(k8.storageBits() / 8)});
    table.addRow({"TCP-8M",
                  "THT 1024x2 tags + PHT 262144-set 8-way (n=10)",
                  formatBytes(m8.storageBits() / 8)});
    for (const std::string &name :
         {std::string("dbcp2m"), std::string("stride"),
          std::string("stream"), std::string("markov")}) {
        EngineSetup e = makeEngine(name);
        table.addRow({name, "see src/prefetch",
                      formatBytes(e.prefetcher->storageBits() / 8)});
    }
    std::cout << table.render();

    bench::SuiteOptions opt;
    opt.json_path = args.getString("json");
    bench::writeJsonReport(opt, "table1_config", {&table});
    return 0;
}
