/**
 * @file
 * Two architectural ablations around the paper's placement argument:
 *
 * 1. Prefetcher attachment point (Section 4, Figure 10): the paper
 *    places TCP between L1 and L2 where it observes the L1-D miss
 *    stream. The alternative — observing the L2 demand-miss stream —
 *    sees a filtered, sparser history. Same 8 KB PHT budget for both.
 *
 * 2. Core model (the Figure 14 discussion): an aggressive OoO core
 *    tolerates L2-hit latency, so prefetching into L2 captures most
 *    of the benefit. On an in-order, stall-on-use core the same
 *    machine is far more latency-sensitive and the relative value of
 *    prefetching grows.
 */

#include <iostream>

#include "bench_common.hh"
#include "cpu/inorder_core.hh"

namespace {

using namespace tcp;

/** Run one workload on the in-order core with the given engine. */
CoreResult
runInorder(const std::string &workload, const std::string &engine_name,
           std::uint64_t instructions, std::uint64_t seed)
{
    auto wl = makeWorkload(workload, seed);
    EngineSetup engine = makeEngine(engine_name);
    MachineConfig cfg;
    if (engine.wants_prefetch_bus)
        cfg.prefetch_bus = true;
    MemoryHierarchy mem(cfg, engine.prefetcher.get(),
                        engine.dbp.get());
    InorderCore core(InorderConfig{}, mem);
    core.run(*wl, instructions / 2); // warmup
    return core.run(*wl, instructions);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("Placement and core-model ablations", opt);

    // One OoO batch feeds both tables: per workload [none, tcp8k,
    // tcpl2_8k, hybrid8k] — the base and tcp8k runs are shared.
    const char *ooo_engines[] = {"none", "tcp8k", "tcpl2_8k",
                                 "hybrid8k"};
    constexpr std::size_t kOooStride = 4;
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads)
        for (const char *engine : ooo_engines)
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .seed = opt.seed});
    const std::vector<RunResult> ooo = bench::runBatch(opt, specs);

    // The in-order matrix: per workload [none, tcp8k, hybrid8k].
    const char *io_engines[] = {"none", "tcp8k", "hybrid8k"};
    constexpr std::size_t kIoStride = 3;
    BatchRunner runner(opt.jobs);
    const std::vector<CoreResult> inorder = runner.map<CoreResult>(
        opt.workloads.size() * kIoStride, [&](std::size_t i) {
            return runInorder(opt.workloads[i / kIoStride],
                              io_engines[i % kIoStride],
                              opt.instructions, opt.seed);
        });

    // --- 1. Training-stream placement.
    TextTable placement("Ablation: prefetcher attachment point "
                        "(IPC improvement, OoO core)");
    placement.setHeader({"workload", "L1 miss stream (paper)",
                         "L2 miss stream"});
    std::vector<double> r_l1, r_l2;
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &base = ooo[w * kOooStride + 0];
        const RunResult &l1 = ooo[w * kOooStride + 1];
        const RunResult &l2 = ooo[w * kOooStride + 2];
        r_l1.push_back(l1.ipc() / base.ipc());
        r_l2.push_back(l2.ipc() / base.ipc());
        placement.addRow({opt.workloads[w],
                          formatPercent(ipcImprovement(l1, base), 1),
                          formatPercent(ipcImprovement(l2, base), 1)});
    }
    placement.addRow({"geomean", formatPercent(geomean(r_l1) - 1, 1),
                      formatPercent(geomean(r_l2) - 1, 1)});
    std::cout << placement.render() << "\n";

    // --- 2. Core model sensitivity.
    TextTable cores("Ablation: OoO vs in-order core "
                    "(TCP-8K / Hybrid-8K IPC improvement)");
    cores.setHeader({"workload", "OoO tcp8k", "OoO hybrid8k",
                     "inorder tcp8k", "inorder hybrid8k"});
    std::vector<double> o_t, o_h, i_t, i_h;
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &ob = ooo[w * kOooStride + 0];
        const RunResult &ot = ooo[w * kOooStride + 1];
        const RunResult &oh = ooo[w * kOooStride + 3];
        const CoreResult &ib = inorder[w * kIoStride + 0];
        const CoreResult &it = inorder[w * kIoStride + 1];
        const CoreResult &ih = inorder[w * kIoStride + 2];
        o_t.push_back(ot.ipc() / ob.ipc());
        o_h.push_back(oh.ipc() / ob.ipc());
        i_t.push_back(it.ipc / ib.ipc);
        i_h.push_back(ih.ipc / ib.ipc);
        cores.addRow({opt.workloads[w],
                      formatPercent(ot.ipc() / ob.ipc() - 1, 1),
                      formatPercent(oh.ipc() / ob.ipc() - 1, 1),
                      formatPercent(it.ipc / ib.ipc - 1, 1),
                      formatPercent(ih.ipc / ib.ipc - 1, 1)});
    }
    cores.addRow({"geomean", formatPercent(geomean(o_t) - 1, 1),
                  formatPercent(geomean(o_h) - 1, 1),
                  formatPercent(geomean(i_t) - 1, 1),
                  formatPercent(geomean(i_h) - 1, 1)});
    std::cout << cores.render();
    bench::writeJsonReport(opt, "ablation_placement",
                           {&placement, &cores});
    return 0;
}
