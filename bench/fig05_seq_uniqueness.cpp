/**
 * @file
 * Figure 5: unique three-tag sequences actually observed, as a
 * percentage of the random-sequence upper limit (unique tags cubed).
 * Small percentages indicate strong tag correlation.
 */

#include <iostream>

#include "analysis/miss_stream.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader(
        "Figure 5: sequence uniqueness vs random upper limit", opt);

    TextTable table("Fig 5: observed / possible three-tag sequences");
    table.setHeader({"workload", "unique seqs", "upper limit",
                     "observed %"});
    using Row = std::pair<SeqStatsResult, TagStatsResult>;
    const auto stats = bench::mapWorkloads<Row>(
        opt, [&](const std::string &name) {
            auto wl = makeWorkload(name, opt.seed);
            MissStreamAnalyzer an;
            an.profileTrace(*wl, opt.instructions);
            return Row{an.seqStats(), an.tagStats()};
        });
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const auto &[s, t] = stats[w];
        const double upper = static_cast<double>(t.unique_tags) *
                             t.unique_tags * t.unique_tags;
        table.addRow({opt.workloads[w], std::to_string(s.unique_seqs),
                      formatDouble(upper, 0),
                      formatPercent(s.fraction_of_upper_limit, 3)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig05_seq_uniqueness", {&table});
    return 0;
}
