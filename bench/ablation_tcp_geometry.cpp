/**
 * @file
 * Ablations for the TCP design choices called out in DESIGN.md:
 *   1. THT history depth k (the paper fixes k = 2),
 *   2. PHT associativity (the paper uses 8-way),
 *   3. PHT index function (the paper's truncated addition vs an XOR
 *      fold vs ignoring all history but the last tag),
 *   4. prefetch degree (Section 6's multiple-targets future work).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/tcp.hh"

namespace {

using namespace tcp;

double
meanIpcFor(const bench::SuiteOptions &opt, const TcpConfig &cfg)
{
    std::vector<double> ipcs;
    for (const std::string &name : opt.workloads) {
        auto wl = makeWorkload(name, opt.seed);
        EngineSetup engine;
        engine.prefetcher =
            std::make_unique<TagCorrelatingPrefetcher>(cfg, "tcp");
        const RunResult r = runTrace(*wl, MachineConfig{}, engine,
                                     opt.instructions);
        ipcs.push_back(r.ipc());
    }
    return geomean(ipcs);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("Ablation: TCP geometry", opt);

    TextTable depth("Ablation 1: THT history depth k (8KB PHT)");
    depth.setHeader({"k", "mean IPC"});
    for (unsigned k = 1; k <= 4; ++k) {
        TcpConfig cfg = TcpConfig::tcp8k();
        cfg.history_depth = k;
        depth.addRow({std::to_string(k),
                      formatDouble(meanIpcFor(opt, cfg), 3)});
    }
    std::cout << depth.render() << "\n";

    TextTable assoc("Ablation 2: PHT associativity (8KB PHT)");
    assoc.setHeader({"ways", "mean IPC"});
    for (unsigned ways : {1u, 2u, 4u, 8u, 16u}) {
        TcpConfig cfg = TcpConfig::tcp8k();
        cfg.pht.assoc = ways;
        cfg.pht.sets = 2048 / ways; // keep 2048 entries = 8KB
        assoc.addRow({std::to_string(ways),
                      formatDouble(meanIpcFor(opt, cfg), 3)});
    }
    std::cout << assoc.render() << "\n";

    TextTable index("Ablation 3: PHT index function (8KB PHT)");
    index.setHeader({"index fn", "mean IPC"});
    const std::pair<PhtIndexFn, const char *> fns[] = {
        {PhtIndexFn::TruncatedAdd, "truncated add (paper)"},
        {PhtIndexFn::XorFold, "xor fold"},
        {PhtIndexFn::LastTagOnly, "last tag only"},
    };
    for (const auto &[fn, label] : fns) {
        TcpConfig cfg = TcpConfig::tcp8k();
        cfg.pht.index_fn = fn;
        index.addRow({label, formatDouble(meanIpcFor(opt, cfg), 3)});
    }
    std::cout << index.render() << "\n";

    TextTable degree("Ablation 4: prefetch degree (8KB PHT)");
    degree.setHeader({"degree", "mean IPC"});
    for (unsigned d = 1; d <= 4; ++d) {
        TcpConfig cfg = TcpConfig::tcp8k();
        cfg.degree = d;
        degree.addRow({std::to_string(d),
                       formatDouble(meanIpcFor(opt, cfg), 3)});
    }
    std::cout << degree.render();
    bench::writeJsonReport(opt, "ablation_tcp_geometry",
                           {&depth, &assoc, &index, &degree});
    return 0;
}
