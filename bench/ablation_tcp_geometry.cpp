/**
 * @file
 * Ablations for the TCP design choices called out in DESIGN.md:
 *   1. THT history depth k (the paper fixes k = 2),
 *   2. PHT associativity (the paper uses 8-way),
 *   3. PHT index function (the paper's truncated addition vs an XOR
 *      fold vs ignoring all history but the last tag),
 *   4. prefetch degree (Section 6's multiple-targets future work).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/tcp.hh"

namespace {

using namespace tcp;

/**
 * Geometric-mean IPC for each TCP geometry, the whole table run as
 * one batch. There is no makeEngine() name for an arbitrary
 * TcpConfig, so each spec carries an engine factory.
 */
std::vector<double>
meanIpcsFor(const bench::SuiteOptions &opt,
            const std::vector<TcpConfig> &cfgs)
{
    // One hierarchy config for the whole table — only the TCP
    // geometry varies, so each workload's rows coalesce into one
    // lane-group trace pass.
    const MachineConfig &machine = opt.machine;
    std::vector<RunSpec> specs;
    for (const TcpConfig &cfg : cfgs) {
        for (const std::string &name : opt.workloads) {
            specs.push_back(
                {.workload = name,
                 .instructions = opt.instructions,
                 .machine = machine,
                 .seed = opt.seed,
                 .engine_factory = [cfg] {
                     EngineSetup engine;
                     engine.prefetcher =
                         std::make_unique<TagCorrelatingPrefetcher>(
                             cfg, "tcp");
                     return engine;
                 }});
        }
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);
    std::vector<double> means;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        std::vector<double> ipcs;
        for (std::size_t w = 0; w < opt.workloads.size(); ++w)
            ipcs.push_back(
                results[c * opt.workloads.size() + w].ipc());
        means.push_back(geomean(ipcs));
    }
    return means;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip", "facerec", "gcc", "applu",
                         "art",  "swim",    "ammp"};
    }
    bench::printHeader("Ablation: TCP geometry", opt);

    TextTable depth("Ablation 1: THT history depth k (8KB PHT)");
    depth.setHeader({"k", "mean IPC"});
    {
        std::vector<TcpConfig> cfgs;
        for (unsigned k = 1; k <= 4; ++k) {
            TcpConfig cfg = TcpConfig::tcp8k();
            cfg.history_depth = k;
            cfgs.push_back(cfg);
        }
        const std::vector<double> means = meanIpcsFor(opt, cfgs);
        for (unsigned k = 1; k <= 4; ++k)
            depth.addRow({std::to_string(k),
                          formatDouble(means[k - 1], 3)});
    }
    std::cout << depth.render() << "\n";

    TextTable assoc("Ablation 2: PHT associativity (8KB PHT)");
    assoc.setHeader({"ways", "mean IPC"});
    {
        std::vector<TcpConfig> cfgs;
        for (unsigned ways : {1u, 2u, 4u, 8u, 16u}) {
            TcpConfig cfg = TcpConfig::tcp8k();
            cfg.pht.assoc = ways;
            cfg.pht.sets = 2048 / ways; // keep 2048 entries = 8KB
            cfgs.push_back(cfg);
        }
        const std::vector<double> means = meanIpcsFor(opt, cfgs);
        std::size_t i = 0;
        for (unsigned ways : {1u, 2u, 4u, 8u, 16u})
            assoc.addRow({std::to_string(ways),
                          formatDouble(means[i++], 3)});
    }
    std::cout << assoc.render() << "\n";

    TextTable index("Ablation 3: PHT index function (8KB PHT)");
    index.setHeader({"index fn", "mean IPC"});
    const std::pair<PhtIndexFn, const char *> fns[] = {
        {PhtIndexFn::TruncatedAdd, "truncated add (paper)"},
        {PhtIndexFn::XorFold, "xor fold"},
        {PhtIndexFn::LastTagOnly, "last tag only"},
    };
    {
        std::vector<TcpConfig> cfgs;
        for (const auto &[fn, label] : fns) {
            (void)label;
            TcpConfig cfg = TcpConfig::tcp8k();
            cfg.pht.index_fn = fn;
            cfgs.push_back(cfg);
        }
        const std::vector<double> means = meanIpcsFor(opt, cfgs);
        std::size_t i = 0;
        for (const auto &[fn, label] : fns) {
            (void)fn;
            index.addRow({label, formatDouble(means[i++], 3)});
        }
    }
    std::cout << index.render() << "\n";

    TextTable degree("Ablation 4: prefetch degree (8KB PHT)");
    degree.setHeader({"degree", "mean IPC"});
    {
        std::vector<TcpConfig> cfgs;
        for (unsigned d = 1; d <= 4; ++d) {
            TcpConfig cfg = TcpConfig::tcp8k();
            cfg.degree = d;
            cfgs.push_back(cfg);
        }
        const std::vector<double> means = meanIpcsFor(opt, cfgs);
        for (unsigned d = 1; d <= 4; ++d)
            degree.addRow({std::to_string(d),
                           formatDouble(means[d - 1], 3)});
    }
    std::cout << degree.render();
    bench::writeJsonReport(opt, "ablation_tcp_geometry",
                           {&depth, &assoc, &index, &degree});
    return 0;
}
