/**
 * @file
 * Evaluation of the Section 6 extensions against the paper's
 * baseline TCP-8K: per-set stride assist, Markov-style multi-target
 * PHT entries, the critical-miss filter, and gshare indexing. For
 * each engine: geometric-mean IPC improvement over no prefetching,
 * plus coverage and traffic on the full set.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip",  "bzip2", "parser", "facerec",
                         "gcc",   "applu", "art",    "swim",
                         "mgrid", "ammp"};
    }
    bench::printHeader("Extensions vs baseline TCP-8K", opt);

    const std::vector<std::pair<std::string, std::string>> engines = {
        {"tcp8k", "baseline (paper)"},
        {"tcps8k", "per-set stride assist"},
        {"tcpmt8k", "2-target PHT entries"},
        {"tcpcrit8k", "critical-miss filter"},
        {"tcpgshare8k", "gshare indexing"},
        {"tcpa8k", "feedback-directed throttle"},
    };

    TextTable table("Section 6 extensions (geomean over suite)");
    table.setHeader({"engine", "what", "speedup", "coverage",
                     "extra", "storage"});
    for (const auto &[engine, what] : engines) {
        std::vector<double> ratios;
        double cov_sum = 0.0, extra_sum = 0.0;
        std::uint64_t storage = 0;
        for (const std::string &name : opt.workloads) {
            const RunResult base = runNamed(name, "none",
                                            opt.instructions,
                                            MachineConfig{}, opt.seed);
            const RunResult r = runNamed(name, engine,
                                         opt.instructions,
                                         MachineConfig{}, opt.seed);
            ratios.push_back(r.ipc() / base.ipc());
            if (r.original_l2) {
                cov_sum += static_cast<double>(r.prefetched_original) /
                           static_cast<double>(r.original_l2);
                extra_sum += static_cast<double>(r.prefetchedExtra()) /
                             static_cast<double>(r.original_l2);
            }
            storage = r.pf_storage_bits;
        }
        const double n = static_cast<double>(opt.workloads.size());
        table.addRow({engine, what,
                      formatPercent(geomean(ratios) - 1.0, 1),
                      formatPercent(cov_sum / n, 1),
                      formatPercent(extra_sum / n, 1),
                      formatBytes(storage / 8)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "ablation_extensions", {&table});
    return 0;
}
