/**
 * @file
 * Evaluation of the Section 6 extensions against the paper's
 * baseline TCP-8K: per-set stride assist, Markov-style multi-target
 * PHT entries, the critical-miss filter, and gshare indexing. For
 * each engine: geometric-mean IPC improvement over no prefetching,
 * plus coverage and traffic on the full set.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "1000000");
    args.parse(argc, argv);
    auto opt = bench::suiteOptions(args);
    if (!args.wasSet("workloads")) {
        opt.workloads = {"gzip",  "bzip2", "parser", "facerec",
                         "gcc",   "applu", "art",    "swim",
                         "mgrid", "ammp"};
    }
    bench::printHeader("Extensions vs baseline TCP-8K", opt);

    const std::vector<std::pair<std::string, std::string>> engines = {
        {"tcp8k", "baseline (paper)"},
        {"tcps8k", "per-set stride assist"},
        {"tcpmt8k", "2-target PHT entries"},
        {"tcpcrit8k", "critical-miss filter"},
        {"tcpgshare8k", "gshare indexing"},
        {"tcpa8k", "feedback-directed throttle"},
    };

    TextTable table("Section 6 extensions (geomean over suite)");
    table.setHeader({"engine", "what", "speedup", "coverage",
                     "extra", "storage"});
    // One batch for the whole figure: the shared no-prefetch
    // baselines first, then one slice per engine.
    const std::size_t n_workloads = opt.workloads.size();
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads)
        specs.push_back({.workload = name,
                         .instructions = opt.instructions,
                         .seed = opt.seed});
    for (const auto &[engine, what] : engines) {
        (void)what;
        for (const std::string &name : opt.workloads)
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .seed = opt.seed});
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);

    for (std::size_t e = 0; e < engines.size(); ++e) {
        const auto &[engine, what] = engines[e];
        std::vector<double> ratios;
        double cov_sum = 0.0, extra_sum = 0.0;
        std::uint64_t storage = 0;
        for (std::size_t w = 0; w < n_workloads; ++w) {
            const RunResult &base = results[w];
            const RunResult &r =
                results[(e + 1) * n_workloads + w];
            ratios.push_back(r.ipc() / base.ipc());
            if (r.original_l2) {
                cov_sum += static_cast<double>(r.prefetched_original) /
                           static_cast<double>(r.original_l2);
                extra_sum += static_cast<double>(r.prefetchedExtra()) /
                             static_cast<double>(r.original_l2);
            }
            storage = r.pf_storage_bits;
        }
        const double n = static_cast<double>(n_workloads);
        table.addRow({engine, what,
                      formatPercent(geomean(ratios) - 1.0, 1),
                      formatPercent(cov_sum / n, 1),
                      formatPercent(extra_sum / n, 1),
                      formatBytes(storage / 8)});
    }
    std::cout << table.render();
    bench::writeJsonReport(opt, "ablation_extensions", {&table});
    return 0;
}
