/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: common
 * flags (workload selection, instruction budget, seed) and suite
 * iteration helpers. Every bench binary prints the rows/series of
 * one table or figure from the paper.
 */

#ifndef TCP_BENCH_BENCH_COMMON_HH
#define TCP_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <filesystem>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/batch.hh"
#include "harness/multisim.hh"
#include "harness/runner.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/progress.hh"
#include "sim/build_info.hh"
#include "sim/json.hh"
#include "trace/workloads.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/table.hh"

namespace tcp::bench {

/** Flags every figure bench accepts. */
struct SuiteOptions
{
    std::vector<std::string> workloads;
    std::uint64_t instructions = 0;
    std::uint64_t seed = 1;
    /** Parallel runs (resolved: never 0). */
    unsigned jobs = 1;
    /** Machine-readable report destination ("" = text only). */
    std::string json_path;
    /** Share one materialized arena per workload across the batch. */
    bool arena = true;
    /** Config-parallel lane coalescing (--lanes / --no-coalesce). */
    LaneOptions lanes{};
    /**
     * The hierarchy/core config shared by every spec of the figure,
     * built once here instead of re-derived per spec: predictor
     * sweeps vary only the engine, so every spec carrying this exact
     * config lands in the same coalescing bucket (the lane-group key
     * hashes MachineConfig::canonicalKey()).
     */
    MachineConfig machine{};
    /** Record-once trace cache directory ("" = arenas in memory). */
    std::string trace_cache;
    /** Start of the bench, for the report's wall-clock field. */
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    /**
     * Phase profiler, created unconditionally and installed as the
     * process profiler; its breakdown is stamped into the JSON
     * report next to wall_clock_seconds. Declared before the
     * streamer so the streamer's final summary (destroyed first) can
     * still read it.
     */
    std::shared_ptr<PhaseProfiler> profiler;
    /** Live NDJSON heartbeats (--progress; null when off). */
    std::shared_ptr<ProgressStreamer> progress;
    /** Sweep-shared telemetry registry (--metrics; null when off). */
    std::shared_ptr<MetricsRegistry> metrics;
    /**
     * Simulated ops accounted by runBatch/mapWorkloads, the
     * numerator of the report's ops_per_second. Mutable: accounting
     * is bookkeeping, not configuration, and the options struct is
     * passed by const reference everywhere.
     */
    mutable std::uint64_t ops_simulated = 0;
    /**
     * Effective lane count of every coalesced group scheduled by
     * runBatch(), across all its calls (singletons included), for
     * the report's "lanes" record. Mutable for the same reason as
     * ops_simulated.
     */
    mutable std::vector<unsigned> lane_groups;
};

/** Register the common flags on @p args. */
inline void
addSuiteFlags(ArgParser &args, const std::string &default_instructions)
{
    args.addFlag("workloads", "all",
                 "comma-separated workload subset, or 'all'");
    args.addFlag("instructions", default_instructions,
                 "micro-ops to simulate per run");
    args.addFlag("seed", "1", "workload stream seed");
    args.addFlag("jobs", "0",
                 "parallel runs (0 = one per hardware thread)");
    args.addFlag("json", "",
                 "also write the figure's tables as JSON to this path");
    args.addFlag("arena", "1",
                 "materialize each workload stream once and share it "
                 "across runs (0 = synthesize per run)");
    args.addFlag("trace-cache", "",
                 "directory of .tcptrc recordings to reuse across "
                 "bench invocations (record once, sweep many)");
    args.addFlag("lanes", "16",
                 "max predictor lanes per coalesced trace pass "
                 "(specs sharing a workload/machine run as resident "
                 "lanes of one job; < 2 disables coalescing)");
    args.addFlag("no-coalesce", "0",
                 "schedule every spec as its own job even when specs "
                 "could share a trace pass (results are bit-identical "
                 "either way)");
    args.addFlag("lockstep", "0",
                 "step coalesced lanes in lockstep over "
                 "lane-interleaved SIMD tag directories (bit-identical "
                 "to the default lane-sequential sweep; pays only when "
                 "the group's state overflows the host LLC)");
    args.addFlag("progress", "",
                 "stream live NDJSON progress records to this sink "
                 "(a file path, '-' for stderr, or 'fd:N')");
    args.addFlag("progress-period", "1",
                 "progress heartbeat period in seconds");
    args.addFlag("metrics", "0",
                 "record sweep telemetry (latency/occupancy/hit-run "
                 "histograms) into the JSON report");
}

/** Resolve the common flags after parsing. */
inline SuiteOptions
suiteOptions(const ArgParser &args)
{
    SuiteOptions opt;
    const std::string sel = args.getString("workloads");
    if (sel == "all") {
        opt.workloads = workloadNames();
    } else {
        opt.workloads = splitString(sel, ',');
        for (const std::string &name : opt.workloads) {
            if (!isWorkloadName(name))
                tcp_fatal("unknown workload '", name, "'");
        }
    }
    opt.instructions = args.getUint("instructions");
    opt.seed = args.getUint("seed");
    const std::uint64_t jobs = args.getUint("jobs");
    opt.jobs = jobs ? static_cast<unsigned>(jobs)
                    : ThreadPool::defaultWorkers();
    opt.json_path = args.getString("json");
    opt.arena = args.getUint("arena") != 0;
    opt.trace_cache = args.getString("trace-cache");
    opt.lanes.max_lanes =
        static_cast<unsigned>(args.getUint("lanes"));
    opt.lanes.coalesce = args.getUint("no-coalesce") == 0;
    opt.lanes.lockstep = args.getUint("lockstep") != 0;
    opt.start = std::chrono::steady_clock::now();
    opt.profiler = std::make_shared<PhaseProfiler>();
    PhaseProfiler::install(opt.profiler.get());
    const std::string progress_sink = args.getString("progress");
    if (!progress_sink.empty()) {
        ProgressConfig pc;
        pc.sink = progress_sink;
        pc.period_seconds = args.getDouble("progress-period");
        opt.progress = std::make_shared<ProgressStreamer>(pc);
    }
    if (args.getUint("metrics") != 0)
        opt.metrics = std::make_shared<MetricsRegistry>();
    return opt;
}

/**
 * Run one figure matrix on opt.jobs workers. Results come back in
 * submission order and are bit-identical to a sequential runNamed()
 * loop over the same specs (the BatchRunner determinism contract),
 * so callers index them by the order they pushed specs.
 */
inline std::vector<RunResult>
runBatch(const SuiteOptions &opt, std::vector<RunSpec> specs)
{
    // Materialize each workload stream once and share it across the
    // matrix (replay is bit-identical to per-run synthesis, so the
    // determinism contract above is unchanged).
    if (opt.arena)
        attachArenas(specs, opt.trace_cache);
    for (const RunSpec &spec : specs)
        opt.ops_simulated += specOpsNeeded(spec);
    if (opt.metrics) {
        for (RunSpec &spec : specs)
            if (!spec.metrics)
                spec.shared_metrics = opt.metrics.get();
    }
    // Record the schedule's effective lane counts for the report:
    // the same partition BatchRunner::run derives internally
    // (coalesceSpecs is deterministic).
    for (const LaneGroup &g : coalesceSpecs(specs, opt.lanes))
        opt.lane_groups.push_back(
            static_cast<unsigned>(g.lanes.size()));
    BatchRunner runner(opt.jobs);
    return runner.run(specs, opt.progress.get(), opt.lanes);
}

/**
 * Parallel map over the suite's workloads for analyses that are not
 * RunSpec-shaped (miss-stream characterization): evaluates
 * @p fn(workload_name) on opt.jobs workers, returning the values in
 * suite order. @p fn must build all of its state per call.
 */
template <typename T, typename Fn>
std::vector<T>
mapWorkloads(const SuiteOptions &opt, Fn fn)
{
    // Analysis jobs profile roughly opt.instructions ops each; close
    // enough for the throughput line (the simulated-op accounting is
    // exact only for RunSpec batches).
    opt.ops_simulated += opt.workloads.size() * opt.instructions;
    ProgressStreamer *progress = opt.progress.get();
    if (progress)
        progress->addTotal(opt.workloads.size(),
                           opt.workloads.size() * opt.instructions);
    BatchRunner runner(opt.jobs);
    return runner.map<T>(opt.workloads.size(), [&](std::size_t i) {
        if (progress)
            progress->jobStarted();
        T value = fn(opt.workloads[i]);
        if (progress)
            progress->jobFinished(opt.instructions);
        return value;
    });
}

/** One table serialized as {title, header, rows}. */
inline Json
tableToJson(const TextTable &table)
{
    Json t = Json::object();
    t["title"] = table.title();
    Json header = Json::array();
    for (const std::string &h : table.header())
        header.push(h);
    t["header"] = std::move(header);
    Json rows = Json::array();
    for (const auto &row : table.rows()) {
        Json r = Json::array();
        for (const std::string &cell : row)
            r.push(cell);
        rows.push(std::move(r));
    }
    t["rows"] = std::move(rows);
    return t;
}

/**
 * Write the bench's tables as one JSON record (no-op when the user
 * did not pass --json). Every figure and ablation binary calls this
 * after printing its text tables, so a results directory can carry a
 * BENCH_<name>.json next to each text report.
 *
 * A bench with machine-readable output beyond its tables (fig16's
 * per-run championship records, consumed by `tcpreport leaderboard`)
 * passes it as (@p extra_key, @p extra); the block lands at the
 * document's top level next to "tables".
 */
inline void
writeJsonReport(const SuiteOptions &opt, const std::string &bench,
                std::initializer_list<const TextTable *> tables,
                const std::string &extra_key = "", Json extra = {})
{
    if (opt.json_path.empty())
        return;
    std::error_code ec;
    if (std::filesystem::exists(opt.json_path, ec))
        tcp_warn("--json: overwriting existing report ",
                 opt.json_path);
    Json doc = Json::object();
    doc["bench"] = bench;
    doc["instructions"] = opt.instructions;
    doc["seed"] = opt.seed;
    doc["jobs"] = opt.jobs;
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - opt.start).count();
    doc["wall_clock_seconds"] = wall;
    doc["ops_simulated"] = opt.ops_simulated;
    {
        // The effective lane schedule: how the specs actually
        // coalesced (group sizes in schedule order), plus the knobs
        // that shaped it — so a timing report says what it measured.
        Json lanes = Json::object();
        lanes["max_lanes"] = std::uint64_t{opt.lanes.max_lanes};
        lanes["coalesce"] = opt.lanes.coalesce;
        lanes["lockstep"] = opt.lanes.lockstep;
        lanes["simd_tier"] = std::string(simdTierName(simdTier()));
        Json groups = Json::array();
        for (unsigned size : opt.lane_groups)
            groups.push(std::uint64_t{size});
        lanes["groups"] = std::move(groups);
        doc["lanes"] = std::move(lanes);
    }
    doc["ops_per_second"] =
        wall > 0.0 ? static_cast<double>(opt.ops_simulated) / wall
                   : 0.0;
    Json workloads = Json::array();
    for (const std::string &w : opt.workloads)
        workloads.push(w);
    doc["workloads"] = std::move(workloads);
    {
        // Table serialization is the bulk of the report phase; the
        // scope closes before the profile is stamped so its own cost
        // is included.
        ScopedPhase phase(Phase::Report);
        Json arr = Json::array();
        for (const TextTable *t : tables)
            arr.push(tableToJson(*t));
        doc["tables"] = std::move(arr);
    }
    if (!extra_key.empty())
        doc[extra_key] = std::move(extra);
    if (opt.profiler)
        doc["profile"] = opt.profiler->toJson();
    if (opt.metrics)
        doc["metrics"] = opt.metrics->snapshotJson();
    doc["build"] = buildInfoJson();
    writeJsonFile(opt.json_path, doc);
}

/** Print a one-line provenance header for reproducibility. */
inline void
printHeader(const std::string &what, const SuiteOptions &opt)
{
    if (opt.progress)
        opt.progress->setLabel(what);
    std::cout << "# " << what << "\n# instructions/run="
              << opt.instructions << " seed=" << opt.seed
              << " workloads=" << opt.workloads.size()
              << " jobs=" << opt.jobs << "\n\n";
}

} // namespace tcp::bench

#endif // TCP_BENCH_BENCH_COMMON_HH
