/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: common
 * flags (workload selection, instruction budget, seed) and suite
 * iteration helpers. Every bench binary prints the rows/series of
 * one table or figure from the paper.
 */

#ifndef TCP_BENCH_BENCH_COMMON_HH
#define TCP_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "trace/workloads.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace tcp::bench {

/** Flags every figure bench accepts. */
struct SuiteOptions
{
    std::vector<std::string> workloads;
    std::uint64_t instructions = 0;
    std::uint64_t seed = 1;
};

/** Register the common flags on @p args. */
inline void
addSuiteFlags(ArgParser &args, const std::string &default_instructions)
{
    args.addFlag("workloads", "all",
                 "comma-separated workload subset, or 'all'");
    args.addFlag("instructions", default_instructions,
                 "micro-ops to simulate per run");
    args.addFlag("seed", "1", "workload stream seed");
}

/** Resolve the common flags after parsing. */
inline SuiteOptions
suiteOptions(const ArgParser &args)
{
    SuiteOptions opt;
    const std::string sel = args.getString("workloads");
    if (sel == "all") {
        opt.workloads = workloadNames();
    } else {
        opt.workloads = splitString(sel, ',');
        for (const std::string &name : opt.workloads) {
            if (!isWorkloadName(name))
                tcp_fatal("unknown workload '", name, "'");
        }
    }
    opt.instructions = args.getUint("instructions");
    opt.seed = args.getUint("seed");
    return opt;
}

/** Print a one-line provenance header for reproducibility. */
inline void
printHeader(const std::string &what, const SuiteOptions &opt)
{
    std::cout << "# " << what << "\n# instructions/run="
              << opt.instructions << " seed=" << opt.seed
              << " workloads=" << opt.workloads.size() << "\n\n";
}

} // namespace tcp::bench

#endif // TCP_BENCH_BENCH_COMMON_HH
