/**
 * @file
 * Figure 11: IPC improvement of TCP with an 8 KB PHT (TCP-8K) and an
 * 8 MB PHT (TCP-8M) versus DBCP with a 2 MB correlation table — the
 * paper's headline comparison. The last row is the suite geometric
 * mean (the paper reports ~7% for DBCP, ~14% for TCP-8K, ~15% for
 * TCP-8M).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 11: TCP vs DBCP IPC improvement", opt);

    const std::vector<std::string> engines = {"dbcp2m", "tcp8k",
                                              "tcp8m"};
    TextTable table("Fig 11: IPC improvement over no prefetching");
    table.setHeader({"workload", "base IPC", "DBCP-2M", "TCP-8K",
                     "TCP-8M"});
    // One job per (workload, engine) cell, base run included; the
    // batch returns them in submission order.
    const std::size_t stride = engines.size() + 1;
    std::vector<RunSpec> specs;
    for (const std::string &name : opt.workloads) {
        specs.push_back({.workload = name,
                         .instructions = opt.instructions,
                         .seed = opt.seed});
        for (const std::string &engine : engines)
            specs.push_back({.workload = name,
                             .engine = engine,
                             .instructions = opt.instructions,
                             .seed = opt.seed});
    }
    const std::vector<RunResult> results = bench::runBatch(opt, specs);
    std::vector<std::vector<double>> ratios(engines.size());
    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const RunResult &base = results[w * stride];
        std::vector<std::string> row = {opt.workloads[w],
                                        formatDouble(base.ipc(), 3)};
        for (std::size_t e = 0; e < engines.size(); ++e) {
            const RunResult &r = results[w * stride + 1 + e];
            ratios[e].push_back(r.ipc() / base.ipc());
            row.push_back(
                formatPercent(ipcImprovement(r, base), 1));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> mean_row = {"geomean", "-"};
    for (const auto &r : ratios)
        mean_row.push_back(formatPercent(geomean(r) - 1.0, 1));
    table.addRow(std::move(mean_row));
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig11_tcp_vs_dbcp", {&table});
    return 0;
}
