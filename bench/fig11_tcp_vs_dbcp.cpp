/**
 * @file
 * Figure 11: IPC improvement of TCP with an 8 KB PHT (TCP-8K) and an
 * 8 MB PHT (TCP-8M) versus DBCP with a 2 MB correlation table — the
 * paper's headline comparison. The last row is the suite geometric
 * mean (the paper reports ~7% for DBCP, ~14% for TCP-8K, ~15% for
 * TCP-8M).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tcp;
    ArgParser args;
    bench::addSuiteFlags(args, "2000000");
    args.parse(argc, argv);
    const auto opt = bench::suiteOptions(args);
    bench::printHeader("Figure 11: TCP vs DBCP IPC improvement", opt);

    const std::vector<std::string> engines = {"dbcp2m", "tcp8k",
                                              "tcp8m"};
    TextTable table("Fig 11: IPC improvement over no prefetching");
    table.setHeader({"workload", "base IPC", "DBCP-2M", "TCP-8K",
                     "TCP-8M"});
    std::vector<std::vector<double>> ratios(engines.size());
    for (const std::string &name : opt.workloads) {
        const RunResult base = runNamed(name, "none", opt.instructions,
                                        MachineConfig{}, opt.seed);
        std::vector<std::string> row = {name,
                                        formatDouble(base.ipc(), 3)};
        for (std::size_t e = 0; e < engines.size(); ++e) {
            const RunResult r = runNamed(name, engines[e],
                                         opt.instructions,
                                         MachineConfig{}, opt.seed);
            ratios[e].push_back(r.ipc() / base.ipc());
            row.push_back(
                formatPercent(ipcImprovement(r, base), 1));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> mean_row = {"geomean", "-"};
    for (const auto &r : ratios)
        mean_row.push_back(formatPercent(geomean(r) - 1.0, 1));
    table.addRow(std::move(mean_row));
    std::cout << table.render();
    bench::writeJsonReport(opt, "fig11_tcp_vs_dbcp", {&table});
    return 0;
}
